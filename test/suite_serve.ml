(* The csokitd service path. The contract under test: every byte a
   client reads off the socket is identical to what the library produces
   when called directly — solve reports, ball reports (canonical order
   preserved), drift insert/delete/query scripts — for every pool size,
   both wire codecs, and with observability off. On top of that:
   concurrent clients observe the same bytes as a serial client
   (registry locking), overload produces the typed reply in FIFO
   position without wedging the connection, and framed reads survive
   byte-at-a-time delivery and EINTR. *)

module Pool = Cso_parallel.Pool
module Point = Cso_metric.Point
module Rect = Cso_geom.Rect
module Bbd = Cso_geom.Bbd_tree
module Obs = Cso_obs.Obs
module Gcso = Cso_core.Gcso_general
module Instance = Cso_core.Instance
module Drift = Cso_workload.Drift
module P = Cso_serve.Protocol
module Registry = Cso_serve.Registry
module Server = Cso_serve.Server
module Client = Cso_serve.Client

let domain_counts = [ 1; 2; 4 ]

let with_domains nd f =
  let old = Pool.get_default () in
  Pool.with_pool ~num_domains:nd (fun p ->
      Pool.set_default p;
      Fun.protect ~finally:(fun () -> Pool.set_default old) f)

let without_obs f =
  let old = Obs.enabled () in
  Obs.set_enabled false;
  Fun.protect ~finally:(fun () -> Obs.set_enabled old) f

let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* Frame payload of an encoded message: what a reader hands back. *)
let strip mode s =
  match mode with
  | P.Binary -> String.sub s 4 (String.length s - 4)
  | P.Jsonl -> String.sub s 0 (String.length s - 1)

let dec mode payload =
  match P.decode_response mode payload with
  | Ok r -> r
  | Error m -> Alcotest.failf "undecodable response payload: %s" m

(* ------------------------------------------------------------------ *)
(* In-process harness: socketpair connections driven by Server.step    *)
(* ------------------------------------------------------------------ *)

(* A harness client keeps raw payload bytes (the byte-identity subject)
   and never blocks: reads are select-guarded, so the single-threaded
   test can interleave client reads with server steps. *)
type hc = {
  fd : Unix.file_descr;
  rd : P.reader;
  mutable got : string list; (* newest first *)
  mutable eof : bool;
}

let frames c = List.rev c.got
let newest c = List.hd c.got

let readable fd =
  match Unix.select [ fd ] [] [] 0.0 with
  | r, _, _ -> r <> []
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

let try_read c =
  if (not c.eof) && readable c.fd then
    let buf = Bytes.create 4096 in
    match Unix.read c.fd buf 0 (Bytes.length buf) with
    | 0 -> c.eof <- true
    | n ->
        List.iter
          (function
            | `Frame p -> c.got <- p :: c.got
            | `Oversized _ -> Alcotest.fail "server sent an oversized frame")
          (P.feed c.rd buf n)
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> c.eof <- true

let send_raw c s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    match Unix.write_substring c.fd s !pos (len - !pos) with
    | n -> pos := !pos + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let h_send mode c req = send_raw c (P.encode_request mode req)

(* Step the server until every client holds its expected reply count. *)
let pump srv cs ~want =
  let short = List.exists2 (fun c k -> List.length c.got < k) cs in
  let rounds = ref 0 in
  while short want && !rounds < 20_000 do
    incr rounds;
    ignore (Server.step ~timeout:0.002 srv);
    List.iter try_read cs
  done;
  if short want then
    Alcotest.failf "pump: got %s of %s expected replies"
      (String.concat "," (List.map (fun c -> string_of_int (List.length c.got)) cs))
      (String.concat "," (List.map string_of_int want))

let with_server ?(config = Server.default_config) ~n f =
  let reg = Registry.create () in
  let srv = Server.create ~config reg in
  let cs =
    List.init n (fun _ ->
        let sa, sb = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Server.add_connection srv sa;
        { fd = sb; rd = P.reader config.Server.mode; got = []; eof = false })
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
        cs;
      Server.close srv)
    (fun () -> f srv cs)

(* ------------------------------------------------------------------ *)
(* Byte identity: server replies = direct library calls, bit for bit   *)
(* ------------------------------------------------------------------ *)

let name = "w"

let load_req w =
  P.Load
    {
      name;
      points = [||];
      rects = w.Drift.rects;
      k = w.Drift.k;
      z = w.Drift.z;
      eps = 0.5;
      rounds = Some 40;
      drift = 2.0;
    }

(* Interleave solves, ball queries, assignments and batched ball
   sweeps into a drifting insert/delete stream. Stats is excluded
   (wall-clock histograms are not deterministic); one request against a
   missing instance pins the typed error bytes. *)
let script_of_workload w =
  let reqs = ref [ P.Solve "missing"; load_req w ] in
  let push r = reqs := r :: !reqs in
  let last_point = ref None in
  let solved = ref false in
  Array.iteri
    (fun i op ->
      (match op with
      | Drift.Insert p ->
          last_point := Some p;
          push (P.Insert { name; point = p })
      | Drift.Delete id -> push (P.Delete { name; id }));
      let n = i + 1 in
      if n mod 15 = 0 then begin
        push (P.Solve name);
        solved := true
      end;
      if n mod 10 = 0 then begin
        (match !last_point with
        | Some c -> push (P.Query_ball { name; center = c; radius = 1.5; eps = 0.3 })
        | None -> ());
        push
          (P.Query_ball
             {
               name;
               center = Array.make w.Drift.dim 0.0;
               radius = 4.0;
               eps = 0.0;
             })
      end;
      if !solved && n mod 25 = 0 then push (P.Assign name);
      if n mod 30 = 0 then begin
        push (P.Prepare name);
        push (P.Balls_all { name; radius = 1.0; eps = 0.25 })
      end)
    w.Drift.ops;
  push (P.Solve name);
  push (P.Assign name);
  List.rev !reqs

(* Reference execution: the same requests answered by direct library
   calls. Deliberately takes different code paths where one exists —
   [Balls_all] is answered by sequential per-point [Bbd.ball_query]
   instead of the pooled [Bbd.balls_all] the registry batches through,
   so the pooled path's bit-identity is part of what's pinned. *)
let mirror reqs =
  let inc = ref None in
  let static = ref None in
  let centers = ref None in
  let the_inc () = Option.get !inc in
  List.map
    (fun req ->
      match req with
      | P.Load { points; rects; k; z; eps; rounds; drift; name = n } ->
          if n <> name then P.Error (P.Unknown_instance, Printf.sprintf "no instance %S" n)
          else begin
            let i = Gcso.Incremental.create ~eps ?rounds ~drift ~rects ~k ~z () in
            Array.iter (fun p -> ignore (Gcso.Incremental.insert i p)) points;
            inc := Some i;
            P.Ok_reply
          end
      | P.Insert { point; _ } ->
          static := None;
          P.Inserted (Gcso.Incremental.insert (the_inc ()) point)
      | P.Delete { id; _ } ->
          static := None;
          Gcso.Incremental.delete (the_inc ()) id;
          P.Ok_reply
      | P.Insert_rect { name = n; _ } when n <> name ->
          P.Error (P.Unknown_instance, Printf.sprintf "no instance %S" n)
      | P.Insert_rect { rect; _ } ->
          (* Point set untouched: the prepared static tree stays valid,
             matching the registry. *)
          P.Inserted (Gcso.Incremental.insert_rect (the_inc ()) rect)
      | P.Delete_rect { id; _ } -> (
          match Gcso.Incremental.delete_rect (the_inc ()) id with
          | Ok () -> P.Ok_reply
          | Error o ->
              P.Error
                ( P.Orphaned,
                  Printf.sprintf
                    "deleting rect %d would orphan live point %d (covered \
                     by no other rectangle)"
                    o.Gcso.Incremental.rect_id o.Gcso.Incremental.witness )
          | exception Invalid_argument m -> P.Error (P.Bad_request, m))
      | P.Prepare _ ->
          let live = Gcso.Incremental.live_points (the_inc ()) in
          static :=
            Some
              ( Array.of_list (List.map fst live),
                Array.of_list (List.map snd live) );
          P.Ok_reply
      | P.Solve n when n <> name ->
          P.Error (P.Unknown_instance, Printf.sprintf "no instance %S" n)
      | P.Solve _ ->
          let i = the_inc () in
          let before = Gcso.Incremental.re_solves i in
          let rep, ids, rect_ids = Gcso.Incremental.query i in
          let after = Gcso.Incremental.re_solves i in
          let cs =
            match !centers with
            | Some prev when after = before -> prev
            | _ ->
                List.map
                  (fun ix -> (ids.(ix), Gcso.Incremental.point i ids.(ix)))
                  rep.Gcso.solution.Instance.centers
          in
          centers := Some cs;
          P.Solved
            {
              centers = List.map fst cs;
              outliers =
                List.map
                  (fun j -> rect_ids.(j))
                  rep.Gcso.solution.Instance.outliers;
              radius = rep.Gcso.radius;
              rounds_per_guess = rep.Gcso.rounds_per_guess;
              guesses = rep.Gcso.guesses;
              re_solves = after;
              cached = after = before;
            }
      | P.Query_ball { center; radius; eps; _ } ->
          P.Ball (Gcso.Incremental.ball_points (the_inc ()) ~center ~radius ~eps)
      | P.Balls_all { radius; eps; _ } -> (
          match !static with
          | None -> Alcotest.fail "script sent balls_all before prepare"
          | Some (ids, pts) ->
              let tree = Bbd.build pts in
              P.Balls
                (Array.map
                   (fun p ->
                     Bbd.ball_query tree ~center:p ~radius ~eps
                     |> List.concat_map (Bbd.points_of_node tree)
                     |> List.map (fun l -> ids.(l)))
                   pts))
      | P.Assign _ -> (
          match !centers with
          | None | Some [] ->
              (* A solve can legitimately produce zero centers (the
                 whole population inside outlier rectangles); assign
                 then has nothing to assign to, same as never solving. *)
              P.Error
                ( P.No_solution,
                  Printf.sprintf
                    "instance %S has no solved centers to assign to (send \
                     solve first)" name )
          | Some cs ->
              P.Assigned
                (List.map
                   (fun (id, p) ->
                     let best = ref (-1) and bd = ref infinity in
                     List.iter
                       (fun (cid, c) ->
                         let d = Point.l2 p c in
                         if d < !bd then begin
                           best := cid;
                           bd := d
                         end)
                       cs;
                     (id, !best))
                   (Gcso.Incremental.live_points (the_inc ()))))
      | P.Stats | P.Metrics | P.Flight | P.Shutdown ->
          Alcotest.fail
            "stats/metrics/flight/shutdown do not belong in byte-identity \
             scripts")
    reqs

let serve_payloads mode reqs =
  let config = { Server.default_config with Server.mode } in
  with_server ~config ~n:1 (fun srv cs ->
      let c = List.hd cs in
      List.iter (h_send mode c) reqs;
      pump srv cs ~want:[ List.length reqs ];
      frames c)

let drift_script () =
  let rng = Random.State.make [| 2025 |] in
  script_of_workload (Drift.drifting rng ~n_ops:120 ~k:2 ~z:1)

(* On mismatch, pin down the first divergent reply and render it (and
   its request) as JSONL — far more readable than two raw byte dumps. *)
let check_payloads label mode reqs expected got =
  if expected <> got then begin
    let show_payload p =
      match P.decode_response mode p with
      | Ok r -> String.trim (P.encode_response P.Jsonl r)
      | Error _ -> Printf.sprintf "<undecodable %S>" p
    in
    let rec first i = function
      | e :: es, g :: gs -> if e <> g then Some (i, e, g) else first (i + 1) (es, gs)
      | _ -> None
    in
    match first 0 (expected, got) with
    | Some (i, e, g) ->
        Alcotest.failf
          "%s: first divergence at reply %d of %d\n  request:  %s\n  \
           library:  %s\n  server:   %s"
          label i (List.length expected)
          (String.trim (P.encode_request P.Jsonl (List.nth reqs i)))
          (show_payload e) (show_payload g)
    | None ->
        Alcotest.failf "%s: reply count differs (library %d, server %d)" label
          (List.length expected) (List.length got)
  end

let test_byte_identity mode () =
  let reqs = drift_script () in
  let expected =
    List.map (fun r -> strip mode (P.encode_response mode r)) (mirror reqs)
  in
  List.iter
    (fun nd ->
      let got = with_domains nd (fun () -> serve_payloads mode reqs) in
      check_payloads
        (Printf.sprintf "server bytes = library bytes (%d domains)" nd)
        mode reqs expected got)
    domain_counts;
  let got = without_obs (fun () -> serve_payloads mode reqs) in
  check_payloads "server bytes = library bytes (CSO_OBS=0)" mode reqs expected
    got

(* Set updates over the wire: rect insert/delete interleaved with
   solves, including an Orphaned refusal, an unknown-rect-id error, an
   unknown-instance error, and solves whose outlier indices must be
   translated to stable external rect ids (position 1 of the shrunken
   instance is external rect 2 by the end). *)
let rect_script () =
  let ra = Rect.of_intervals [ (-1.0, 3.0); (-1.0, 3.0) ] in
  let rb = Rect.of_intervals [ (2.0, 6.0); (-1.0, 3.0) ] in
  let far = Rect.of_intervals [ (50.0, 52.0); (50.0, 52.0) ] in
  [
    P.Load
      {
        name;
        points = [||];
        rects = [| ra; rb |];
        k = 1;
        z = 1;
        eps = 0.5;
        rounds = Some 40;
        drift = 2.0;
      };
    P.Insert { name; point = [| 0.0; 0.0 |] } (* id 0: ra only *);
    P.Insert { name; point = [| 2.5; 0.5 |] } (* id 1: ra and rb *);
    P.Insert { name; point = [| 5.0; 0.0 |] } (* id 2: rb only *);
    P.Solve name;
    P.Delete_rect { name; id = 0 } (* refused: orphans point 0 *);
    P.Insert_rect { name; rect = far } (* external rect id 2 *);
    P.Insert { name; point = [| 51.0; 51.0 |] } (* id 3: far only *);
    P.Solve name (* rect insert forced this re-solve *);
    P.Delete { name; id = 0 };
    P.Delete_rect { name; id = 0 } (* now succeeds *);
    P.Solve name (* outliers in external rect ids: {1, 2} positions {0, 1} *);
    P.Delete_rect { name; id = 0 } (* already deleted: Bad_request *);
    P.Delete_rect { name; id = 7 } (* never existed: Bad_request *);
    P.Insert_rect { name = "missing"; rect = far } (* Unknown_instance *);
    P.Prepare name;
    P.Balls_all { name; radius = 1.5; eps = 0.25 };
    P.Assign name;
  ]

let test_rect_byte_identity mode () =
  let reqs = rect_script () in
  let expected =
    List.map (fun r -> strip mode (P.encode_response mode r)) (mirror reqs)
  in
  List.iter
    (fun nd ->
      let got = with_domains nd (fun () -> serve_payloads mode reqs) in
      check_payloads
        (Printf.sprintf "rect updates: server = library (%d domains)" nd)
        mode reqs expected got)
    domain_counts;
  let got = without_obs (fun () -> serve_payloads mode reqs) in
  check_payloads "rect updates: server = library (CSO_OBS=0)" mode reqs
    expected got

(* ------------------------------------------------------------------ *)
(* Concurrency: N interleaved clients see the bytes of a serial client *)
(* ------------------------------------------------------------------ *)

let ro_requests dim =
  [
    P.Solve name;
    P.Query_ball { name; center = Array.make dim 0.0; radius = 2.0; eps = 0.0 };
    P.Query_ball { name; center = Array.make dim 1.0; radius = 1.0; eps = 0.5 };
    P.Balls_all { name; radius = 1.5; eps = 0.25 };
    P.Assign name;
    P.Query_ball { name; center = Array.make dim 0.5; radius = 3.0; eps = 0.1 };
  ]

(* This is the test that pins the registry's locking discipline: with
   the per-entry mutex removed, concurrent solve/query/assign races on
   the entry's cached state and the answers (or their order) diverge
   from the serial run. *)
let test_concurrent_matches_serial () =
  let mode = P.Binary in
  let rng = Random.State.make [| 77 |] in
  let w = Drift.drifting rng ~n_ops:60 ~k:2 ~z:1 in
  let pts =
    Array.of_list
      (List.filter_map
         (function Drift.Insert p -> Some p | Drift.Delete _ -> None)
         (Array.to_list w.Drift.ops))
  in
  let load =
    P.Load
      {
        name;
        points = pts;
        rects = w.Drift.rects;
        k = w.Drift.k;
        z = w.Drift.z;
        eps = 0.5;
        rounds = Some 40;
        drift = 2.0;
      }
  in
  let setup = [ load; P.Solve name; P.Prepare name ] in
  let queries =
    List.concat (List.init 4 (fun _ -> ro_requests w.Drift.dim))
  in
  let nq = List.length queries in
  let config = { Server.default_config with Server.mode } in
  let serial =
    with_server ~config ~n:1 (fun srv cs ->
        let c = List.hd cs in
        List.iter (h_send mode c) (setup @ queries);
        pump srv cs ~want:[ 3 + nq ];
        drop 3 (frames c))
  in
  List.iter
    (fun nd ->
      with_domains nd (fun () ->
          with_server ~config ~n:4 (fun srv cs ->
              let c0 = List.hd cs in
              List.iter (h_send mode c0) setup;
              pump srv cs ~want:[ 3; 0; 0; 0 ];
              List.iter (fun c -> List.iter (h_send mode c) queries) cs;
              pump srv cs ~want:[ 3 + nq; nq; nq; nq ];
              List.iteri
                (fun j c ->
                  let got = if j = 0 then drop 3 (frames c) else frames c in
                  Alcotest.(check (list string))
                    (Printf.sprintf
                       "client %d of 4 = serial bytes (%d domains)" j nd)
                    serial got)
                cs)))
    domain_counts

(* Interleaved mutations from many clients must linearize: every
   insert gets a distinct fresh id, every delete of one's own insert
   succeeds, every concurrent solve/query sees a coherent structure,
   and the live set ends exactly where it started. Half the clients
   mutate while the other half solve — the tiny population doubles
   every round, so each round's solves re-run MWU concurrently with the
   tree merges. This is the test that depends on the registry's
   per-entry lock: without it, a solve reading the Bentley-Saxe levels
   mid-merge answers over a torn population, inserts lose id
   allocations, or replies turn into typed errors. Caveat from the
   lock-removal drill (delete the [with_lock] in [Registry.with_entry]
   and rerun): on a single-core host the whole storm fits in one
   scheduler quantum, so the race does not manifest there (0 failures
   in 100 unlocked runs on a 1-cpu container) — it needs real
   parallelism to bite, which is exactly what multi-core CI provides. *)
let test_concurrent_mutation_storm () =
  let mode = P.Binary in
  let n0 = 4 in
  let pts = Array.init n0 (fun i -> [| float_of_int i; 0.0 |]) in
  let rects = [| Rect.of_intervals [ (-1.0, 120.0); (-1.0, 120.0) ] |] in
  let load =
    P.Load
      { name; points = pts; rects; k = 2; z = 0; eps = 0.5; rounds = Some 40;
        drift = 2.0 }
  in
  let rounds = 60 in
  with_domains 8 (fun () ->
      with_server ~n:8 (fun srv cs ->
          let c0 = List.hd cs in
          h_send mode c0 load;
          pump srv cs ~want:[ 1; 0; 0; 0; 0; 0; 0; 0 ];
          let want = Array.of_list (List.map (fun c -> List.length c.got) cs) in
          let bump () = Array.iteri (fun j k -> want.(j) <- k + 1) want in
          (* Clients 0-3 mutate; clients 4-7 solve and query. *)
          let mutators = List.filteri (fun j _ -> j < 4) cs in
          let all_ids = ref [] in
          for round = 0 to rounds - 1 do
            List.iteri
              (fun j c ->
                if j < 4 then
                  h_send mode c
                    (P.Insert
                       {
                         name;
                         point =
                           [| 10.0 +. float_of_int j; float_of_int round |];
                       })
                else h_send mode c (P.Solve name))
              cs;
            bump ();
            pump srv cs ~want:(Array.to_list want);
            let round_ids =
              List.map
                (fun c ->
                  match dec mode (newest c) with
                  | P.Inserted id -> id
                  | _ -> Alcotest.fail "expected an Inserted reply")
                mutators
            in
            List.iteri
              (fun j c ->
                if j >= 4 then
                  match dec mode (newest c) with
                  | P.Solved _ -> ()
                  | _ -> Alcotest.fail "expected a Solved reply")
              cs;
            all_ids := round_ids @ !all_ids;
            List.iteri
              (fun j c ->
                if j < 4 then
                  h_send mode c
                    (P.Delete { name; id = List.nth round_ids j })
                else
                  h_send mode c
                    (P.Query_ball
                       {
                         name;
                         center = [| 0.0; 0.0 |];
                         radius = 500.0;
                         eps = 0.0;
                       }))
              cs;
            bump ();
            pump srv cs ~want:(Array.to_list want);
            List.iteri
              (fun j c ->
                match (j < 4, dec mode (newest c)) with
                | true, P.Ok_reply -> ()
                | true, _ -> Alcotest.fail "expected delete acknowledgement"
                | false, P.Ball l ->
                    (* A coherent snapshot: the initial points are
                       always live, and nothing reported twice. *)
                    Alcotest.(check bool) "ball reply is a coherent snapshot"
                      true
                      (List.length (List.sort_uniq compare l) = List.length l
                      && List.for_all (fun i -> List.mem i l)
                           (List.init n0 Fun.id))
                | false, _ -> Alcotest.fail "expected a Ball reply")
              cs
          done;
          let distinct = List.sort_uniq compare !all_ids in
          Alcotest.(check int) "distinct fresh ids" (4 * rounds)
            (List.length distinct);
          Alcotest.(check bool) "ids allocated after the initial load" true
            (List.for_all (fun i -> i >= n0) distinct);
          h_send mode c0
            (P.Query_ball
               { name; center = [| 0.0; 0.0 |]; radius = 1000.0; eps = 0.0 });
          pump srv cs
            ~want:
              (Array.to_list
                 (Array.mapi (fun j k -> if j = 0 then k + 1 else k) want));
          match dec mode (newest c0) with
          | P.Ball live ->
              Alcotest.(check (list int)) "live set restored"
                (List.init n0 Fun.id) live
          | _ -> Alcotest.fail "expected a Ball reply"))

(* ------------------------------------------------------------------ *)
(* Overload: typed replies in FIFO position, connection stays usable   *)
(* ------------------------------------------------------------------ *)

let fd_count () = Array.length (Sys.readdir "/proc/self/fd")

let test_overload () =
  let before = fd_count () in
  let mode = P.Binary in
  let config = { Server.mode; max_inflight = 2; batch = 1 } in
  let load =
    P.Load
      {
        name;
        points = Array.init 6 (fun i -> [| float_of_int i; 0.0 |]);
        rects = [| Rect.of_intervals [ (-1.0, 9.0); (-1.0, 9.0) ] |];
        k = 1;
        z = 0;
        eps = 0.5;
        rounds = Some 40;
        drift = 2.0;
      }
  in
  let q =
    P.Query_ball { name; center = [| 0.0; 0.0 |]; radius = 10.0; eps = 0.0 }
  in
  with_server ~config ~n:1 (fun srv cs ->
      let c = List.hd cs in
      h_send mode c load;
      pump srv cs ~want:[ 1 ];
      (* Eight frames land before the server steps: two fit the
         admission bound, six are answered Overloaded — in arrival
         position, since responses carry no correlation ids. *)
      for _ = 1 to 8 do
        h_send mode c q
      done;
      pump srv cs ~want:[ 9 ];
      let replies = List.map (dec mode) (drop 1 (frames c)) in
      let balls, overloads =
        List.partition (function P.Ball _ -> true | _ -> false) replies
      in
      Alcotest.(check int) "two admitted" 2 (List.length balls);
      Alcotest.(check bool) "six typed overload replies" true
        (List.for_all (fun r -> r = P.Overloaded) overloads
        && List.length overloads = 6);
      (match replies with
      | P.Ball _ :: P.Ball _ :: rest ->
          Alcotest.(check bool) "overloads after the admitted replies" true
            (List.for_all (fun r -> r = P.Overloaded) rest)
      | _ -> Alcotest.fail "admitted replies must come first (FIFO)");
      (* The connection is still usable once the queue drains. *)
      h_send mode c q;
      pump srv cs ~want:[ 10 ];
      Alcotest.(check bool) "same ball bytes after the storm" true
        (newest c = List.nth (frames c) 1));
  Alcotest.(check int) "no leaked descriptors" before (fd_count ())

(* ------------------------------------------------------------------ *)
(* Partial reads and EINTR                                             *)
(* ------------------------------------------------------------------ *)

(* Server side: a request trickling in one byte per step must produce
   no reply until its last byte, then exactly one. *)
let test_server_partial_frame () =
  with_server ~n:1 (fun srv cs ->
      let c = List.hd cs in
      let s = P.encode_request P.Binary P.Stats in
      String.iteri
        (fun i ch ->
          send_raw c (String.make 1 ch);
          ignore (Server.step srv);
          try_read c;
          if i < String.length s - 1 then
            Alcotest.(check int) "no reply before the frame completes" 0
              (List.length c.got))
        s;
      pump srv cs ~want:[ 1 ];
      match dec P.Binary (newest c) with
      | P.Stats_reply _ -> ()
      | _ -> Alcotest.fail "expected a stats reply")

(* Client side: a writer thread dribbles a response frame one byte at a
   time down a pipe while an interval timer peppers the process with
   SIGALRM, so every read can come back short or EINTR — the blocking
   client must still reassemble the frame and see a clean EOF after.
   (A thread, not a fork: [Unix.fork] is unavailable once the domain
   pool has ever spun up.) *)
let test_client_dribbled_frame_with_eintr () =
  let expect = P.Balls [| [ 1; 2 ]; []; [ 3; 40; 500 ] |] in
  let frame = P.encode_response P.Binary expect in
  let r, w = Unix.pipe () in
  let writer =
    Thread.create
      (fun () ->
        String.iter
          (fun ch ->
            let rec put () =
              try ignore (Unix.write_substring w (String.make 1 ch) 0 1)
              with Unix.Unix_error (Unix.EINTR, _, _) -> put ()
            in
            put ();
            Thread.delay 0.0005)
          frame;
        Unix.close w)
      ()
  in
  let old = Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> ())) in
  let stop_timer () =
    ignore
      (Unix.setitimer Unix.ITIMER_REAL
         { Unix.it_interval = 0.0; it_value = 0.0 });
    Sys.set_signal Sys.sigalrm old
  in
  Fun.protect ~finally:stop_timer (fun () ->
      ignore
        (Unix.setitimer Unix.ITIMER_REAL
           { Unix.it_interval = 0.0003; it_value = 0.0003 });
      let c = Client.of_fd r ~mode:P.Binary in
      let got = Client.recv c in
      Alcotest.(check bool) "frame reassembled bit-identically" true
        (got = expect);
      Alcotest.(check bool) "clean EOF at the frame boundary" true
        (Client.recv_frame c = None);
      Client.close c);
  Thread.join writer

(* ------------------------------------------------------------------ *)
(* Protocol units: totality, truncation, oversize, shutdown, stats     *)
(* ------------------------------------------------------------------ *)

let sample_requests =
  [
    load_req
      {
        Drift.ops = [||];
        rects =
          [|
            Rect.of_intervals [ (neg_infinity, 3.5); (0.0, infinity) ];
            Rect.of_intervals [ (-1.0, 1.0); (-2.0, 2.0) ];
          |];
        k = 2;
        z = 1;
        dim = 2;
        final_live = 0;
      };
    P.Prepare "a b\"c";
    P.Solve "";
    P.Query_ball
      { name = "x"; center = [| -0.1; 1e-300; infinity |]; radius = 0.25;
        eps = 0.125 };
    P.Balls_all { name = "x"; radius = 1e9; eps = 0.0 };
    P.Assign "x";
    P.Insert { name = "x"; point = [| 1.5; -2.25 |] };
    (* 2^53 - 1: the largest magnitude the JSONL number path carries
       exactly (binary takes the full 63 bits, checked separately). *)
    P.Delete { name = "x"; id = (1 lsl 53) - 1 };
    P.Insert_rect
      {
        name = "x";
        rect = Rect.of_intervals [ (neg_infinity, 0.125); (-3.5, infinity) ];
      };
    P.Delete_rect { name = "a b\"c"; id = (1 lsl 53) - 1 };
    P.Stats;
    P.Metrics;
    P.Flight;
    P.Shutdown;
  ]

let sample_responses =
  [
    P.Ok_reply;
    P.Inserted 0;
    P.Solved
      {
        centers = [ 3; 1 ];
        outliers = [ 0 ];
        radius = 0.7071067811865476;
        rounds_per_guess = 40;
        guesses = 3;
        re_solves = 2;
        cached = true;
      };
    P.Ball [];
    P.Ball [ 0; 2; 5 ];
    P.Balls [| [ 1 ]; []; [ 2; 0 ] |];
    P.Assigned [ (0, 3); (1, 3); (2, 1) ];
    P.Stats_reply "{\"label\":\"csokitd\"}";
    P.Metrics_reply
      "# HELP cso_counter_total x\n# TYPE cso_counter_total counter\n# EOF\n";
    P.Flight_reply
      "{\"id\": 0, \"kind\": \"solve\", \"conn\": 1, \"queue_us\": 2, \
       \"exec_us\": 3, \"flush_us\": 4, \"outcome\": \"ok\"}\n";
    P.Error (P.Not_prepared, "instance \"x\" has no prepared static tree");
    P.Error
      (P.Orphaned, "deleting rect 1 would orphan live point 0 (covered by \
                    no other rectangle)");
    P.Overloaded;
    P.Bye;
  ]

let test_roundtrip () =
  List.iter
    (fun mode ->
      List.iter
        (fun req ->
          match P.decode_request mode (strip mode (P.encode_request mode req)) with
          | Ok r -> Alcotest.(check bool) "request round-trips" true (r = req)
          | Error m -> Alcotest.failf "request failed to decode: %s" m)
        sample_requests;
      List.iter
        (fun resp ->
          match
            P.decode_response mode (strip mode (P.encode_response mode resp))
          with
          | Ok r -> Alcotest.(check bool) "response round-trips" true (r = resp)
          | Error m -> Alcotest.failf "response failed to decode: %s" m)
        sample_responses)
    [ P.Binary; P.Jsonl ];
  (* Binary carries the full int range. *)
  let big = P.Delete { name = "x"; id = max_int } in
  match P.decode_request P.Binary (strip P.Binary (P.encode_request P.Binary big)) with
  | Ok r -> Alcotest.(check bool) "max_int round-trips in binary" true (r = big)
  | Error m -> Alcotest.failf "binary max_int failed: %s" m

(* Every strict prefix of a valid payload must decode to Error — never
   raise, never hang, never succeed. (Each direction is only checked
   against its own decoder: a prefix of a request payload may by
   coincidence be a complete valid *response*, e.g. the one-byte
   [Ok_reply] tag.) *)
let test_truncation_total () =
  let check_prefixes what decode p =
    for i = 0 to String.length p - 1 do
      match decode (String.sub p 0 i) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "truncated %s decoded at %d" what i
    done
  in
  List.iter
    (fun mode ->
      List.iter
        (fun r ->
          check_prefixes "request" (P.decode_request mode)
            (strip mode (P.encode_request mode r)))
        sample_requests;
      List.iter
        (fun r ->
          check_prefixes "response" (P.decode_response mode)
            (strip mode (P.encode_response mode r)))
        sample_responses)
    [ P.Binary; P.Jsonl ]

let test_bad_tag_total () =
  let p = strip P.Binary (P.encode_request P.Binary P.Stats) in
  let mangled = "\xff" ^ String.sub p 1 (String.length p - 1) in
  (match P.decode_request P.Binary mangled with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad tag decoded");
  match P.decode_response P.Jsonl "{\"resp\":\"nope\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown jsonl response decoded"

let test_reader_byte_at_a_time () =
  List.iter
    (fun mode ->
      let frames_in =
        List.map (fun r -> P.encode_request mode r) sample_requests
      in
      let stream = String.concat "" frames_in in
      let rd = P.reader mode in
      let got = ref [] in
      String.iter
        (fun ch ->
          let b = Bytes.make 1 ch in
          List.iter
            (function
              | `Frame p -> got := p :: !got
              | `Oversized _ -> Alcotest.fail "spurious oversize")
            (P.feed rd b 1))
        stream;
      Alcotest.(check (list string)) "byte-at-a-time = whole frames"
        (List.map (strip mode) frames_in)
        (List.rev !got);
      Alcotest.(check int) "no bytes pending" 0 (P.reader_pending rd))
    [ P.Binary; P.Jsonl ]

let test_reader_oversize_poisons () =
  let rd = P.reader P.Binary in
  let len = P.max_frame + 1 in
  let hdr = Bytes.create 4 in
  Bytes.set_uint8 hdr 0 (len lsr 24 land 0xff);
  Bytes.set_uint8 hdr 1 (len lsr 16 land 0xff);
  Bytes.set_uint8 hdr 2 (len lsr 8 land 0xff);
  Bytes.set_uint8 hdr 3 (len land 0xff);
  (match P.feed rd hdr 4 with
  | [ `Oversized l ] -> Alcotest.(check int) "reported length" len l
  | _ -> Alcotest.fail "expected a single oversize event");
  Alcotest.(check bool) "poisoned" true (P.reader_poisoned rd);
  let valid = P.encode_request P.Binary P.Stats in
  let b = Bytes.of_string valid in
  Alcotest.(check bool) "poisoned reader yields nothing" true
    (P.feed rd b (Bytes.length b) = [])

(* Oversized frame over the wire: typed Too_large reply, then the
   server closes that connection — and only that connection. *)
let test_oversize_closes_connection () =
  with_server ~n:2 (fun srv cs ->
      let bad = List.nth cs 0 and good = List.nth cs 1 in
      let len = P.max_frame + 1 in
      let hdr = Bytes.create 4 in
      Bytes.set_uint8 hdr 0 (len lsr 24 land 0xff);
      Bytes.set_uint8 hdr 1 (len lsr 16 land 0xff);
      Bytes.set_uint8 hdr 2 (len lsr 8 land 0xff);
      Bytes.set_uint8 hdr 3 (len land 0xff);
      send_raw bad (Bytes.to_string hdr);
      pump srv cs ~want:[ 1; 0 ];
      (match dec P.Binary (newest bad) with
      | P.Error (P.Too_large, _) -> ()
      | _ -> Alcotest.fail "expected a Too_large error");
      let deadline = ref 0 in
      while (not bad.eof) && !deadline < 1000 do
        incr deadline;
        ignore (Server.step ~timeout:0.002 srv);
        try_read bad
      done;
      Alcotest.(check bool) "offending connection closed" true bad.eof;
      h_send P.Binary good P.Stats;
      pump srv cs ~want:[ 1; 1 ];
      match dec P.Binary (newest good) with
      | P.Stats_reply _ -> ()
      | _ -> Alcotest.fail "other connection must stay usable")

let test_stats_and_shutdown () =
  with_server ~n:1 (fun srv cs ->
      let c = List.hd cs in
      h_send P.Binary c P.Stats;
      pump srv cs ~want:[ 1 ];
      (match dec P.Binary (newest c) with
      | P.Stats_reply s ->
          Alcotest.(check bool) "stats blob names the serve counters" true
            (contains s "serve.requests")
      | _ -> Alcotest.fail "expected a stats reply");
      h_send P.Binary c P.Shutdown;
      pump srv cs ~want:[ 2 ];
      Alcotest.(check bool) "shutdown acknowledged" true
        (dec P.Binary (newest c) = P.Bye);
      let alive = ref true and n = ref 0 in
      while !alive && !n < 1000 do
        incr n;
        alive := Server.step srv
      done;
      Alcotest.(check bool) "server stopped after shutdown" false !alive;
      try_read c;
      Alcotest.(check bool) "connection closed by the server" true c.eof)

(* ------------------------------------------------------------------ *)
(* Observability: byte counters, stats content, metrics/flight         *)
(* ------------------------------------------------------------------ *)

let small_load =
  P.Load
    {
      name;
      points = Array.init 6 (fun i -> [| float_of_int i; 0.0 |]);
      rects = [| Rect.of_intervals [ (-1.0, 9.0); (-1.0, 9.0) ] |];
      k = 2;
      z = 0;
      eps = 0.5;
      rounds = Some 40;
      drift = 2.0;
    }

(* Constant clocks make every phase timing exactly 0µs — a *counting*
   fake clock would not be deterministic, because pool domains race on
   the call order. Restores the library defaults on the way out. *)
let with_fake_clocks srv f =
  Obs.set_clock (fun () -> 0.0);
  Server.set_clock srv (fun () -> 0.0);
  Fun.protect ~finally:(fun () -> Obs.set_clock Sys.time) f

(* [serve.bytes_in]/[serve.bytes_out] must equal the summed encoded
   frame sizes — per codec, since the two codecs frame differently. *)
let test_bytes_counters () =
  List.iter
    (fun mode ->
      Obs.reset ();
      let reqs =
        [
          small_load;
          P.Solve name;
          P.Query_ball
            { name; center = [| 0.0; 0.0 |]; radius = 10.0; eps = 0.0 };
        ]
      in
      let config = { Server.default_config with Server.mode } in
      let payloads =
        with_server ~config ~n:1 (fun srv cs ->
            let c = List.hd cs in
            List.iter (h_send mode c) reqs;
            pump srv cs ~want:[ List.length reqs ];
            frames c)
      in
      (* Reply payloads come back stripped; add the framing overhead
         back (4-byte length prefix / trailing newline). *)
      let overhead = match mode with P.Binary -> 4 | P.Jsonl -> 1 in
      let expected_in =
        List.fold_left
          (fun a r -> a + String.length (P.encode_request mode r))
          0 reqs
      in
      let expected_out =
        List.fold_left (fun a p -> a + String.length p + overhead) 0 payloads
      in
      let label s = Printf.sprintf "%s (%s)" s (P.mode_to_string mode) in
      Alcotest.(check bool) (label "bytes flowed") true
        (expected_in > 0 && expected_out > 0);
      Alcotest.(check int) (label "serve.bytes_in") expected_in
        (Obs.value_of "serve.bytes_in");
      Alcotest.(check int) (label "serve.bytes_out") expected_out
        (Obs.value_of "serve.bytes_out"))
    [ P.Binary; P.Jsonl ]

(* The Stats blob must parse and carry the serve counters, the per-kind
   latency histograms and the per-instance registry section. *)
let test_stats_content () =
  Obs.reset ();
  with_server ~n:1 (fun srv cs ->
      let c = List.hd cs in
      let reqs =
        [
          small_load;
          P.Solve name;
          P.Insert { name; point = [| 7.0; 1.0 |] };
          P.Stats;
        ]
      in
      List.iter (h_send P.Binary c) reqs;
      pump srv cs ~want:[ List.length reqs ];
      match dec P.Binary (newest c) with
      | P.Stats_reply blob ->
          let j = Obs.Json.parse blob in
          let counters = Option.get (Obs.Json.member "counters" j) in
          let cnt k =
            match Obs.Json.member k counters with
            | Some v -> int_of_float (Obs.Json.num v)
            | None -> Alcotest.failf "stats blob lacks counter %s" k
          in
          Alcotest.(check int) "serve.requests" 4 (cnt "serve.requests");
          Alcotest.(check bool) "bytes counters present and nonzero" true
            (cnt "serve.bytes_in" > 0 && cnt "serve.bytes_out" > 0);
          let hists = Option.get (Obs.Json.member "hists" j) in
          List.iter
            (fun kind ->
              let hname = "serve.request_us." ^ kind in
              match Obs.Json.member hname hists with
              | Some v ->
                  let total =
                    List.fold_left
                      (fun a pair ->
                        match Obs.Json.arr pair with
                        | [ _; c ] -> a + int_of_float (Obs.Json.num c)
                        | _ -> Alcotest.fail "malformed histogram pair")
                      0 (Obs.Json.arr v)
                  in
                  Alcotest.(check int)
                    (Printf.sprintf "%s holds one observation" hname)
                    1 total
              | None -> Alcotest.failf "stats blob lacks histogram %s" hname)
            [ "load"; "solve"; "insert" ];
          let instances = Option.get (Obs.Json.member "instances" j) in
          let w = Option.get (Obs.Json.member name instances) in
          let field k = int_of_float (Obs.Json.num (Option.get (Obs.Json.member k w))) in
          Alcotest.(check int) "instance live count" 7 (field "live");
          Alcotest.(check int) "instance inserts" 7 (field "inserts");
          Alcotest.(check int) "instance deletes" 0 (field "deletes");
          Alcotest.(check int) "centers age since last solve" 1
            (field "centers_age");
          Alcotest.(check bool) "solved flag" true
            (Obs.Json.member "solved" w = Some (Obs.Json.Bool true))
      | _ -> Alcotest.fail "expected a stats reply")

(* Metrics text, Flight JSONL and the Stats blob must come out
   bit-identical for every pool size under the constant fake clock, and
   pass their own exact re-parse gates. *)
let test_metrics_flight_identity () =
  let script = drift_script () @ [ P.Metrics; P.Flight; P.Stats ] in
  let run nd =
    with_domains nd (fun () ->
        Obs.reset ();
        with_server ~n:1 (fun srv cs ->
            with_fake_clocks srv (fun () ->
                let c = List.hd cs in
                List.iter (h_send P.Binary c) script;
                pump srv cs ~want:[ List.length script ];
                let fr = frames c in
                let n = List.length fr in
                let at i =
                  match dec P.Binary (List.nth fr i) with
                  | P.Metrics_reply s | P.Flight_reply s | P.Stats_reply s -> s
                  | _ -> Alcotest.fail "expected an observability reply"
                in
                (at (n - 3), at (n - 2), at (n - 1)))))
  in
  let metrics, flight, stats = run (List.hd domain_counts) in
  (match Obs.Metrics.check metrics with
  | Ok () -> ()
  | Error m -> Alcotest.failf "metrics self-check failed: %s" m);
  let records = Obs.Flight.parse_jsonl flight in
  Alcotest.(check string) "flight JSONL re-renders exactly" flight
    (Obs.Flight.to_jsonl records);
  (* One record per request answered before the Flight dump (all
     timings zero under the fake clock; outcomes typed). *)
  Alcotest.(check int) "one flight record per earlier request"
    (List.length script - 2)
    (List.length records);
  List.iter
    (fun r ->
      Alcotest.(check bool) "fake-clock phases are zero" true
        Obs.Flight.(r.fl_queue_us = 0 && r.fl_exec_us = 0 && r.fl_flush_us = 0))
    records;
  Alcotest.(check bool) "an error outcome is typed" true
    (List.exists
       (fun r -> r.Obs.Flight.fl_outcome = "error:unknown_instance")
       records);
  List.iter
    (fun nd ->
      let m, f, s = run nd in
      let lbl what = Printf.sprintf "%s identical (%d domains)" what nd in
      Alcotest.(check string) (lbl "metrics") metrics m;
      Alcotest.(check string) (lbl "flight") flight f;
      Alcotest.(check string) (lbl "stats") stats s)
    (List.tl domain_counts)

(* With the kill switch off, Metrics still renders valid (frozen) text
   and the flight ring stays empty — and neither touches the clock. *)
let test_obs_off_metrics_flight () =
  without_obs (fun () ->
      Obs.Flight.clear ();
      with_server ~n:1 (fun srv cs ->
          let c = List.hd cs in
          List.iter (h_send P.Binary c) [ small_load; P.Metrics; P.Flight ];
          pump srv cs ~want:[ 3 ];
          match List.map (dec P.Binary) (frames c) with
          | [ P.Ok_reply; P.Metrics_reply m; P.Flight_reply f ] ->
              (match Obs.Metrics.check m with
              | Ok () -> ()
              | Error e ->
                  Alcotest.failf "obs-off metrics must stay valid: %s" e);
              Alcotest.(check string) "obs-off flight ring is empty" "" f
          | _ -> Alcotest.fail "unexpected replies"))

let suite =
  [
    Alcotest.test_case "byte identity: binary, drift script, all pools" `Slow
      (test_byte_identity P.Binary);
    Alcotest.test_case "byte identity: jsonl, drift script, all pools" `Slow
      (test_byte_identity P.Jsonl);
    Alcotest.test_case "byte identity: binary, rect updates, all pools" `Quick
      (test_rect_byte_identity P.Binary);
    Alcotest.test_case "byte identity: jsonl, rect updates, all pools" `Quick
      (test_rect_byte_identity P.Jsonl);
    Alcotest.test_case "concurrent clients = serial bytes" `Slow
      test_concurrent_matches_serial;
    Alcotest.test_case "concurrent mutation storm linearizes" `Quick
      test_concurrent_mutation_storm;
    Alcotest.test_case "overload: typed replies, FIFO, no leaks" `Quick
      test_overload;
    Alcotest.test_case "server reassembles byte-at-a-time frames" `Quick
      test_server_partial_frame;
    Alcotest.test_case "client survives dribbled frames + EINTR" `Quick
      test_client_dribbled_frame_with_eintr;
    Alcotest.test_case "codec round-trips (both modes)" `Quick test_roundtrip;
    Alcotest.test_case "truncated payloads decode to Error" `Quick
      test_truncation_total;
    Alcotest.test_case "bad tags decode to Error" `Quick test_bad_tag_total;
    Alcotest.test_case "reader: byte-at-a-time framing" `Quick
      test_reader_byte_at_a_time;
    Alcotest.test_case "reader: oversize poisons" `Quick
      test_reader_oversize_poisons;
    Alcotest.test_case "oversize closes only the offending connection" `Quick
      test_oversize_closes_connection;
    Alcotest.test_case "stats and shutdown" `Quick test_stats_and_shutdown;
    Alcotest.test_case "bytes counters match encoded frames" `Quick
      test_bytes_counters;
    Alcotest.test_case "stats blob: counters, per-kind hists, instances"
      `Quick test_stats_content;
    Alcotest.test_case "metrics/flight/stats identical across pools" `Slow
      test_metrics_flight_identity;
    Alcotest.test_case "CSO_OBS=0: metrics valid, flight empty" `Quick
      test_obs_off_metrics_flight;
  ]
