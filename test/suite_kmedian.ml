open Cso_core
module Space = Cso_metric.Space
module Planted = Cso_workload.Planted

let rng () = Random.State.make [| 606 |]

(* Points 0,1,2 tight near the origin (set 0); junk at 100 and 140
   (set 1). k=1, z=1: the median optimum removes set 1 and pays
   |0-1| + |2-1| = 2 from center 1. Removing set 0 instead would leave
   the two spread junk points at cost 40, so "discard the good data" is
   not optimal here. *)
let line_instance () =
  let pts = [| [| 0.0 |]; [| 1.0 |]; [| 2.0 |]; [| 100.0 |]; [| 140.0 |] |] in
  Instance.make (Space.of_points pts) ~sets:[ [ 0; 1; 2 ]; [ 3; 4 ] ] ~k:1 ~z:1

let test_cost () =
  let t = line_instance () in
  let sol = { Instance.centers = [ 1 ]; outliers = [ 1 ] } in
  Alcotest.(check (float 1e-9)) "median cost" 2.0 (Kmedian.cost t sol);
  Alcotest.(check (float 1e-9)) "means cost" 2.0
    (Kmedian.cost ~objective:Kmedian.Means t sol);
  Alcotest.(check (float 1e-9)) "keeping the junk is expensive" 40.0
    (Kmedian.cost t { Instance.centers = [ 3 ]; outliers = [ 0 ] });
  Alcotest.(check bool) "no centers" true
    (Kmedian.cost t { Instance.centers = []; outliers = [ 1 ] } = infinity)

let test_exact_line () =
  let t = line_instance () in
  match Kmedian.exact t with
  | None -> Alcotest.fail "exact should run"
  | Some (sol, c) ->
      Alcotest.(check (float 1e-9)) "optimal median" 2.0 c;
      Alcotest.(check (list int)) "outliers" [ 1 ] sol.Instance.outliers

let test_local_search_line () =
  let t = line_instance () in
  let sol = Kmedian.local_search t in
  Alcotest.(check bool) "valid" true (Instance.is_valid t sol);
  Alcotest.(check (float 1e-9)) "finds the optimum" 2.0 (Kmedian.cost t sol)

let test_lower_bound_line () =
  let t = line_instance () in
  match Kmedian.lp_lower_bound t with
  | None -> Alcotest.fail "lp should run at n=5"
  | Some lb ->
      Alcotest.(check bool) "lower bound below optimum" true (lb <= 2.0 +. 1e-6);
      Alcotest.(check bool) "lower bound positive" true (lb > 0.0)

let test_local_search_planted () =
  let w = Planted.cso (rng ()) ~n:40 ~m:8 ~k:3 ~z:2 in
  let t = w.Planted.instance in
  let sol = Kmedian.local_search t in
  Alcotest.(check bool) "valid" true (Instance.is_valid t sol);
  Alcotest.(check bool) "budgets" true
    (List.length sol.Instance.centers <= 3
    && List.length sol.Instance.outliers <= 2);
  (* Decontamination: per-point average distance must be cluster-scale,
     not junk-scale. *)
  let n_survivors =
    List.length (Instance.surviving t sol.Instance.outliers)
  in
  Alcotest.(check bool) "average distance is cluster-scale" true
    (Kmedian.cost t sol /. float_of_int n_survivors
    < w.Planted.contaminated_lower)

let test_means_objective_prefers_centroids () =
  (* With means, the outlier choice is the same; cost uses squares. *)
  let w = Planted.cso (rng ()) ~n:30 ~m:6 ~k:2 ~z:2 in
  let t = w.Planted.instance in
  let sol = Kmedian.local_search ~objective:Kmedian.Means t in
  Alcotest.(check bool) "valid" true (Instance.is_valid t sol);
  Alcotest.(check bool) "finite" true (Kmedian.cost ~objective:Kmedian.Means t sol < infinity)

let prop_lower_bound_below_exact =
  let rngp = Random.State.make [| 909 |] in
  QCheck.Test.make ~name:"kmedian LP lower bound <= exact optimum" ~count:15
    QCheck.unit
    (fun () ->
      let n = 6 + Random.State.int rngp 5 in
      let m = 3 in
      let pts =
        Array.init n (fun _ ->
            [| Random.State.float rngp 50.0; Random.State.float rngp 50.0 |])
      in
      let sets =
        List.init m (fun j ->
            List.filter
              (fun i -> i mod m = j || Random.State.bool rngp)
              (List.init n Fun.id))
      in
      let t = Instance.make (Cso_metric.Space.of_points pts) ~sets ~k:2 ~z:1 in
      match (Kmedian.lp_lower_bound t, Kmedian.exact t) with
      | Some lb, Some (_, opt) -> lb <= opt +. 1e-6
      | _ -> true)

let prop_local_search_never_below_lower_bound =
  let rngp = Random.State.make [| 910 |] in
  QCheck.Test.make
    ~name:"kmedian local search cost >= LP lower bound" ~count:15 QCheck.unit
    (fun () ->
      let n = 8 + Random.State.int rngp 6 in
      let pts =
        Array.init n (fun _ -> [| Random.State.float rngp 50.0 |])
      in
      let sets =
        List.init 3 (fun j -> List.filter (fun i -> i mod 3 = j) (List.init n Fun.id))
      in
      let t = Instance.make (Cso_metric.Space.of_points pts) ~sets ~k:2 ~z:1 in
      match Kmedian.lp_lower_bound t with
      | None -> true
      | Some lb -> Kmedian.cost t (Kmedian.local_search t) >= lb -. 1e-6)

let suite =
  [
    Alcotest.test_case "cost" `Quick test_cost;
    Alcotest.test_case "exact on line" `Quick test_exact_line;
    Alcotest.test_case "local search on line" `Quick test_local_search_line;
    Alcotest.test_case "lp lower bound on line" `Quick test_lower_bound_line;
    Alcotest.test_case "local search planted" `Slow test_local_search_planted;
    Alcotest.test_case "means objective" `Slow
      test_means_objective_prefers_centroids;
    QCheck_alcotest.to_alcotest prop_lower_bound_below_exact;
    QCheck_alcotest.to_alcotest prop_local_search_never_below_lower_bound;
  ]
