(* The experiment harness: one function per Table-1 row of the paper plus
   the derived scaling / convergence / ablation series (DESIGN.md,
   Section 3). Each function prints a detailed table and records a
   summary line for the final Table-1 reproduction. *)

open Cso_core
module Planted = Cso_workload.Planted
module Rgen = Cso_workload.Relational_gen
module Rel = Cso_relational
module Point = Cso_metric.Point
module Gonzalez = Cso_kcenter.Gonzalez
module Space = Cso_metric.Space
module Mwu = Cso_lp.Mwu
module Pool = Cso_parallel.Pool

let rng seed = Random.State.make [| seed; 77 |]
let seeds = [ 1; 2; 3 ]

let avg l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
let maxl l = List.fold_left max neg_infinity l

let f2 x = Printf.sprintf "%.2f" x

(* ------------------------------------------------------------------ *)
(* T1.R1 -- hardness: CSO solves set cover through the reduction.      *)
(* ------------------------------------------------------------------ *)

let table1_hardness () =
  let instances =
    [
      ( "2-partition",
        Cso_setcover.Set_cover.make ~n_elements:6
          [ [ 0; 1; 2 ]; [ 3; 4; 5 ]; [ 0; 3 ]; [ 1; 4 ]; [ 2; 5 ] ] );
      ( "pairs-6",
        Cso_setcover.Set_cover.make ~n_elements:6
          [ [ 0; 1 ]; [ 2; 3 ]; [ 4; 5 ]; [ 1; 2 ]; [ 3; 4 ]; [ 0; 5 ] ] );
      ( "stars-8",
        Cso_setcover.Set_cover.make ~n_elements:8
          [ [ 0; 1; 2; 3 ]; [ 4; 5; 6; 7 ]; [ 0; 4 ]; [ 1; 5 ]; [ 2; 6 ]; [ 3; 7 ] ]
      );
    ]
  in
  let solver inst = (Cso_general.solve inst).Cso_general.solution in
  let rows, times =
    List.fold_left
      (fun (rows, times) (name, sc) ->
        let opt =
          match Cso_setcover.Set_cover.exact sc with
          | Some o -> List.length o
          | None -> -1
        in
        let f = Cso_setcover.Set_cover.frequency sc in
        let result, t =
          Util.time (fun () -> Hardness.solve_set_cover ~solver sc ~k:2)
        in
        match result with
        | None -> (rows, times)
        | Some (z', cover) ->
            let row =
              [
                name;
                string_of_int sc.Cso_setcover.Set_cover.n_elements;
                string_of_int (Array.length sc.Cso_setcover.Set_cover.sets);
                string_of_int f;
                string_of_int opt;
                string_of_int z';
                string_of_int (List.length cover);
                f2 (float_of_int (List.length cover) /. float_of_int opt);
                Util.fmt_time t;
              ]
            in
            (row :: rows, t :: times))
      ([], []) instances
  in
  Util.print_table
    ~title:
      "T1.R1  SC -> CSO reduction (Lemma 2.1): a (2,2f,2) CSO solver yields \
       set covers"
    [ "instance"; "n'"; "m'"; "f"; "opt"; "z'"; "|cover|"; "ratio"; "time" ]
    (List.rev rows);
  Printf.printf
    "(The UGC lower bound says ratio < f is impossible in general; our \
     solver's 2f blow-up shows as ratio <= 2f.)\n";
  Util.record_t1 ~problem:"CSO lower bound" ~guarantee:"(1, f-z, gamma) impossible"
    ~measured:"reduction solves SC (see T1.R1)"
    ~time:(Util.fmt_time (List.fold_left ( +. ) 0.0 times))
    ~ok:true

(* ------------------------------------------------------------------ *)
(* T1.R2 -- general CSO, LP algorithm: (2, 2f, 2).                     *)
(* ------------------------------------------------------------------ *)

let measure_cso ~solve ~name t ~opt ~opt_is_exact =
  let (sol : Instance.solution), time = Util.time (fun () -> solve t) in
  let mu1 =
    float_of_int (List.length sol.Instance.centers) /. float_of_int t.Instance.k
  in
  let mu2 =
    float_of_int (List.length sol.Instance.outliers)
    /. float_of_int (max 1 t.Instance.z)
  in
  let cost = Instance.cost t sol in
  let mu3 = if opt > 0.0 then cost /. opt else if cost = 0.0 then 1.0 else infinity in
  ignore name;
  (mu1, mu2, mu3, cost, time, opt_is_exact, Instance.is_valid t sol)

let table1_cso_general () =
  let rows = ref [] in
  let all_ok = ref true in
  let worst = ref (0.0, 0.0, 0.0) in
  let total_t = ref 0.0 in
  List.iter
    (fun f ->
      List.iter
        (fun seed ->
          (* Small instances so the exact optimum is computable. The set
             count grows with f so that no 2fz sets can cover everything
             (otherwise cost-0 "discard the data" solutions dominate). *)
          let m = match f with 1 -> 8 | 2 -> 16 | _ -> 20 in
          let w = Planted.cso ~f (rng seed) ~n:36 ~m ~k:2 ~z:2 in
          let t = w.Planted.instance in
          let opt, exact =
            match Exact.opt_cost t with
            | Some o -> (o, true)
            | None -> (w.Planted.opt_upper, false)
          in
          let mu1, mu2, mu3, cost, time, _, valid =
            measure_cso ~solve:(fun t -> (Cso_general.solve t).Cso_general.solution)
              ~name:"lp" t ~opt ~opt_is_exact:exact
          in
          total_t := !total_t +. time;
          let ok =
            valid && mu1 <= 2.0 +. 1e-9
            && mu2 <= (2.0 *. float_of_int f) +. 1e-9
            && (mu3 <= 2.0 +. 1e-6 || not exact)
          in
          if not ok then all_ok := false;
          let w1, w2, w3 = !worst in
          worst := (max w1 mu1, max w2 mu2, max w3 mu3);
          rows :=
            [
              string_of_int f;
              string_of_int seed;
              f2 mu1;
              f2 mu2;
              Printf.sprintf "%.3f" mu3;
              (if exact then "exact" else "planted-bound");
              f2 cost;
              Util.fmt_time time;
            ]
            :: !rows)
        seeds)
    [ 1; 2; 3 ];
  Util.print_table
    ~title:"T1.R2  CSO f>1, LP-based (Thm 2.4): guarantee (2, 2f, 2)"
    [ "f"; "seed"; "mu1"; "mu2"; "mu3"; "opt-ref"; "cost"; "time" ]
    (List.rev !rows);
  let w1, w2, w3 = !worst in
  Util.record_t1 ~problem:"CSO, f>1" ~guarantee:"(2, 2f, 2)"
    ~measured:(Printf.sprintf "worst (%.2f, %.2f, %.2f)" w1 w2 w3)
    ~time:(Util.fmt_time !total_t) ~ok:!all_ok

(* ------------------------------------------------------------------ *)
(* T1.R3 -- disjoint CSO, coreset algorithm: (2, 2, O(1)).             *)
(* ------------------------------------------------------------------ *)

let table1_cso_disjoint () =
  let rows = ref [] in
  let all_ok = ref true in
  let worst = ref (0.0, 0.0, 0.0) in
  let total_t = ref 0.0 in
  List.iter
    (fun seed ->
      List.iter
        (fun (n, use_exact) ->
          let w = Planted.cso (rng seed) ~n ~m:8 ~k:2 ~z:2 in
          let t = w.Planted.instance in
          let opt, exact =
            if use_exact then
              match Exact.opt_cost t with
              | Some o -> (o, true)
              | None -> (w.Planted.opt_upper, false)
            else (w.Planted.opt_upper, false)
          in
          let (report : Cso_disjoint.report), time =
            Util.time (fun () -> Cso_disjoint.solve t)
          in
          total_t := !total_t +. time;
          let sol = report.Cso_disjoint.solution in
          let mu1 = float_of_int (List.length sol.Instance.centers) /. 2.0 in
          let mu2 = float_of_int (List.length sol.Instance.outliers) /. 2.0 in
          let cost = Instance.cost t sol in
          let mu3 = if opt > 0.0 then cost /. opt else 1.0 in
          let ok =
            Instance.is_valid t sol
            && mu1 <= 2.0 +. 1e-9 && mu2 <= 2.0 +. 1e-9
            && (mu3 <= 30.0 || not exact)
          in
          if not ok then all_ok := false;
          let w1, w2, w3 = !worst in
          worst := (max w1 mu1, max w2 mu2, max w3 mu3);
          rows :=
            [
              string_of_int n;
              string_of_int seed;
              f2 mu1;
              f2 mu2;
              Printf.sprintf "%.3f" mu3;
              (if exact then "exact" else "planted-bound");
              string_of_int report.Cso_disjoint.coreset_elements;
              string_of_int (min n (2 * 8)) (* beta_1 = min(n, km) *);
              Util.fmt_time time;
            ]
            :: !rows)
        [ (36, true); (150, false) ])
    seeds;
  Util.print_table
    ~title:
      "T1.R3  CSO f=1, coreset + LP (Thm 2.6): guarantee (2, 2, 30); coreset \
       size <= beta1 = min(n, km)"
    [ "n"; "seed"; "mu1"; "mu2"; "mu3"; "opt-ref"; "|coreset|"; "beta1"; "time" ]
    (List.rev !rows);
  let w1, w2, w3 = !worst in
  Util.record_t1 ~problem:"CSO, f=1" ~guarantee:"(2, 2, O(1)=30)"
    ~measured:(Printf.sprintf "worst (%.2f, %.2f, %.2f)" w1 w2 w3)
    ~time:(Util.fmt_time !total_t) ~ok:!all_ok

(* ------------------------------------------------------------------ *)
(* T1.R4 -- general GCSO, MWU: (2+eps, 2f, 2+eps).                     *)
(* ------------------------------------------------------------------ *)

let mwu_rounds = 150

let table1_gcso_general () =
  let rows = ref [] in
  let all_ok = ref true in
  let worst = ref (0.0, 0.0, 0.0) in
  let total_t = ref 0.0 in
  let eps = 0.3 in
  List.iter
    (fun seed ->
      let w = Planted.gcso_overlapping (rng seed) ~n:120 ~k:3 ~z:2 in
      let g = w.Planted.geo in
      let f = Geo_instance.frequency g in
      let (report : Gcso_general.report), time =
        Util.time (fun () -> Gcso_general.solve ~eps ~rounds:mwu_rounds g)
      in
      total_t := !total_t +. time;
      let sol = report.Gcso_general.solution in
      let mu1 = float_of_int (List.length sol.Instance.centers) /. 3.0 in
      let mu2 = float_of_int (List.length sol.Instance.outliers) /. 2.0 in
      let cost = Geo_instance.cost g sol in
      let mu3 = cost /. w.Planted.g_opt_upper in
      (* mu3 is measured against the planted upper bound, i.e. it
         overestimates the true ratio. Bound check vs (2+eps) kept soft. *)
      let ok =
        Geo_instance.is_valid g sol
        && mu1 <= 2.0 +. eps +. 1e-9
        && mu2 <= (2.0 *. float_of_int f) +. 1e-9
        && cost < w.Planted.g_contaminated_lower
      in
      if not ok then all_ok := false;
      let w1, w2, w3 = !worst in
      worst := (max w1 mu1, max w2 mu2, max w3 mu3);
      rows :=
        [
          string_of_int seed;
          string_of_int f;
          f2 mu1;
          f2 mu2;
          Printf.sprintf "%.3f" mu3;
          string_of_int report.Gcso_general.rounds_per_guess;
          string_of_int report.Gcso_general.guesses;
          Util.fmt_time time;
        ]
        :: !rows)
    seeds;
  Util.print_table
    ~title:
      "T1.R4  GCSO f>1, MWU + BBD/range trees (Thm 3.2): guarantee (2+eps, \
       2f, 2+eps); mu3 vs planted bound"
    [ "seed"; "f"; "mu1"; "mu2"; "mu3"; "rounds"; "guesses"; "time" ]
    (List.rev !rows);
  let w1, w2, w3 = !worst in
  Util.record_t1 ~problem:"GCSO, f>1" ~guarantee:"(2+e, 2f, 2+e)"
    ~measured:(Printf.sprintf "worst (%.2f, %.2f, %.2f*)" w1 w2 w3)
    ~time:(Util.fmt_time !total_t) ~ok:!all_ok

(* ------------------------------------------------------------------ *)
(* T1.R5 -- disjoint GCSO, geometric coreset: (2+eps, 2, O(1)).        *)
(* ------------------------------------------------------------------ *)

let table1_gcso_disjoint () =
  let rows = ref [] in
  let all_ok = ref true in
  let worst = ref (0.0, 0.0, 0.0) in
  let total_t = ref 0.0 in
  let eps = 0.3 in
  List.iter
    (fun seed ->
      let w = Planted.gcso_disjoint (rng seed) ~n:200 ~m:12 ~k:3 ~z:3 in
      let g = w.Planted.geo in
      let (report : Gcso_disjoint.report), time =
        Util.time (fun () -> Gcso_disjoint.solve ~eps ~rounds:mwu_rounds g)
      in
      total_t := !total_t +. time;
      let sol = report.Gcso_disjoint.solution in
      let mu1 = float_of_int (List.length sol.Instance.centers) /. 3.0 in
      let mu2 = float_of_int (List.length sol.Instance.outliers) /. 3.0 in
      let cost = Geo_instance.cost g sol in
      let mu3 = cost /. w.Planted.g_opt_upper in
      let ok =
        Geo_instance.is_valid g sol
        && mu1 <= 2.0 +. eps +. 1e-9
        && mu2 <= 2.0 +. 1e-9
        && cost < w.Planted.g_contaminated_lower
      in
      if not ok then all_ok := false;
      let w1, w2, w3 = !worst in
      worst := (max w1 mu1, max w2 mu2, max w3 mu3);
      rows :=
        [
          string_of_int seed;
          f2 mu1;
          f2 mu2;
          Printf.sprintf "%.3f" mu3;
          string_of_int report.Gcso_disjoint.coreset_points;
          string_of_int report.Gcso_disjoint.forced_outliers;
          Util.fmt_time time;
        ]
        :: !rows)
    seeds;
  Util.print_table
    ~title:
      "T1.R5  GCSO f=1, coreset + MWU (Thm 3.3): guarantee (2+eps, 2, O(1)); \
       mu3 vs planted bound"
    [ "seed"; "mu1"; "mu2"; "mu3"; "|coreset|"; "|H0|"; "time" ]
    (List.rev !rows);
  let w1, w2, w3 = !worst in
  Util.record_t1 ~problem:"GCSO, f=1" ~guarantee:"(2+e, 2, O(1))"
    ~measured:(Printf.sprintf "worst (%.2f, %.2f, %.2f*)" w1 w2 w3)
    ~time:(Util.fmt_time !total_t) ~ok:!all_ok

(* ------------------------------------------------------------------ *)
(* Relational helpers                                                  *)
(* ------------------------------------------------------------------ *)

let cover_cost centers results =
  Array.fold_left
    (fun acc q ->
      max acc
        (List.fold_left (fun m c -> min m (Point.l2 c q)) infinity centers))
    0.0 results

(* ------------------------------------------------------------------ *)
(* T1.R6 -- RCTO1: (2+eps, 2, O(1)).                                   *)
(* ------------------------------------------------------------------ *)

let table1_rcto1 () =
  let rows = ref [] in
  let all_ok = ref true in
  let worst = ref (0.0, 0.0, 0.0) in
  let total_t = ref 0.0 in
  List.iter
    (fun seed ->
      let k = 2 and z = 2 in
      let w = Rgen.rcto1 (rng seed) ~n1:26 ~n2:10 ~k ~z in
      let (r : Rcto1.report), time =
        Util.time (fun () ->
            Rcto1.solve ~eps:0.3 ~rounds:120 w.Rgen.instance w.Rgen.tree ~k ~z)
      in
      total_t := !total_t +. time;
      let reduced =
        Rel.Instance.remove w.Rgen.instance
          (List.map (fun t -> (0, t)) r.Rcto1.outlier_tuples)
      in
      let surviving = Rel.Yannakakis.enumerate reduced w.Rgen.tree in
      let cost = cover_cost r.Rcto1.centers surviving in
      let mu1 = float_of_int (List.length r.Rcto1.centers) /. float_of_int k in
      let mu2 =
        float_of_int (List.length r.Rcto1.outlier_tuples) /. float_of_int z
      in
      let mu3 = cost /. w.Rgen.opt_upper in
      let ok = mu1 <= 2.3 +. 1e-9 && mu2 <= 2.0 +. 1e-9 && cost < 100.0 in
      if not ok then all_ok := false;
      let w1, w2, w3 = !worst in
      worst := (max w1 mu1, max w2 mu2, max w3 mu3);
      rows :=
        [
          string_of_int seed;
          string_of_int (Rel.Instance.size w.Rgen.instance);
          f2 mu1;
          f2 mu2;
          Printf.sprintf "%.3f" mu3;
          string_of_int r.Rcto1.coreset_size;
          Util.fmt_time time;
        ]
        :: !rows)
    seeds;
  Util.print_table
    ~title:
      "T1.R6  RCTO1 (Thm 4.3): guarantee (2+eps, 2, O(1)); outliers from the \
       dirty relation only; mu3 vs planted bound"
    [ "seed"; "N"; "mu1"; "mu2"; "mu3"; "|coreset|"; "time" ]
    (List.rev !rows);
  let w1, w2, w3 = !worst in
  Util.record_t1 ~problem:"RCTO1" ~guarantee:"(2+e, 2, O(1))"
    ~measured:(Printf.sprintf "worst (%.2f, %.2f, %.2f*)" w1 w2 w3)
    ~time:(Util.fmt_time !total_t) ~ok:!all_ok

(* ------------------------------------------------------------------ *)
(* T1.R7 -- RCTO: (1, g, O(1)) FPT.                                    *)
(* ------------------------------------------------------------------ *)

let table1_rcto () =
  let rows = ref [] in
  let all_ok = ref true in
  let worst = ref (0.0, 0.0, 0.0) in
  let total_t = ref 0.0 in
  let cases =
    (* (seed, g, k, z, workload): both the path join (g = 2) and the
       star join (g = 3) to exhibit the g-factor in the outlier budget. *)
    List.map (fun seed -> (seed, 2, 2, 2, `Path)) seeds
    @ [ (1, 3, 2, 1, `Star) ]
  in
  List.iter
    (fun (seed, g, k, z, shape) ->
      let w =
        match shape with
        | `Path -> Rgen.rcto (rng seed) ~n1:14 ~n2:8 ~k ~z
        | `Star -> Rgen.star (rng seed) ~n_leaf:10 ~k ~z
      in
      let result, time =
        Util.time (fun () ->
            Rcto.solve ~rng:(rng (seed + 100)) ~iters:300 w.Rgen.instance
              w.Rgen.tree ~k ~z)
      in
      total_t := !total_t +. time;
      match result with
      | None ->
          all_ok := false;
          rows :=
            [ string_of_int seed; string_of_int g; "-"; "-"; "-"; "-"; "0";
              Util.fmt_time time ]
            :: !rows
      | Some r ->
          let reduced = Rel.Instance.remove w.Rgen.instance r.Rcto.outlier_tuples in
          let surviving = Rel.Yannakakis.enumerate reduced w.Rgen.tree in
          let cost = cover_cost r.Rcto.centers surviving in
          let mu1 = float_of_int (List.length r.Rcto.centers) /. float_of_int k in
          let mu2 =
            float_of_int (List.length r.Rcto.outlier_tuples)
            /. float_of_int z
          in
          let mu3 = cost /. w.Rgen.opt_upper in
          let ok =
            mu1 <= 1.0 +. 1e-9
            && mu2 <= float_of_int g +. 1e-9
            && cost < 100.0
          in
          if not ok then all_ok := false;
          let w1, w2, w3 = !worst in
          worst := (max w1 mu1, max w2 mu2, max w3 mu3);
          rows :=
            [
              string_of_int seed;
              string_of_int g;
              f2 mu1;
              f2 mu2;
              Printf.sprintf "%.3f" mu3;
              Printf.sprintf "%d/%d" r.Rcto.successes r.Rcto.iterations;
              string_of_int (List.length r.Rcto.outlier_tuples);
              Util.fmt_time time;
            ]
            :: !rows)
    cases;
  Util.print_table
    ~title:
      "T1.R7  RCTO FPT (Thm 4.4): guarantee (1, g, O(1)) whp; g = 2 \
       relations on the path join, g = 3 on the star; mu3 vs planted bound"
    [ "seed"; "g"; "mu1"; "mu2"; "mu3"; "valid-iters"; "|T|"; "time" ]
    (List.rev !rows);
  let w1, w2, w3 = !worst in
  Util.record_t1 ~problem:"RCTO" ~guarantee:"(1, g, O(1))"
    ~measured:(Printf.sprintf "worst (%.2f, %.2f, %.2f*)" w1 w2 w3)
    ~time:(Util.fmt_time !total_t) ~ok:!all_ok

(* ------------------------------------------------------------------ *)
(* T1.R8 -- RCRO: (1, 1+eps, 3+eps).                                   *)
(* ------------------------------------------------------------------ *)

let table1_rcro () =
  let rows = ref [] in
  let all_ok = ref true in
  let worst = ref (0.0, 0.0, 0.0) in
  let total_t = ref 0.0 in
  List.iter
    (fun seed ->
      let k = 2 and z = 4 in
      let w = Rgen.rcro (rng seed) ~n1:120 ~n2:30 ~k ~z in
      let (r : Rcro.report), time =
        Util.time (fun () ->
            Rcro.solve ~rng:(rng (seed + 7)) ~eps:0.25 w.Rgen.instance
              w.Rgen.tree ~k ~z)
      in
      total_t := !total_t +. time;
      let results = Rel.Yannakakis.enumerate w.Rgen.instance w.Rgen.tree in
      let out = Rcro.outliers_of r results in
      let kept =
        Array.of_list
          (List.filteri (fun i _ -> not (List.mem i out)) (Array.to_list results))
      in
      let cost = cover_cost r.Rcro.centers kept in
      let mu1 = float_of_int (List.length r.Rcro.centers) /. float_of_int k in
      let mu2 = float_of_int (List.length out) /. float_of_int z in
      let mu3 = cost /. w.Rgen.opt_upper in
      (* (1+eps)^2 with eps=.25 is ~1.56; allow sampling slack to 2. *)
      let ok = mu1 <= 1.0 +. 1e-9 && mu2 <= 2.0 && cost < 100.0 in
      if not ok then all_ok := false;
      let w1, w2, w3 = !worst in
      worst := (max w1 mu1, max w2 mu2, max w3 mu3);
      rows :=
        [
          string_of_int seed;
          string_of_int r.Rcro.join_size;
          string_of_int r.Rcro.sample_size;
          f2 mu1;
          f2 mu2;
          Printf.sprintf "%.3f" mu3;
          Util.fmt_time time;
        ]
        :: !rows)
    seeds;
  Util.print_table
    ~title:
      "T1.R8  RCRO sampling (Thm E.3): guarantee (1, (1+eps)^2, 3+eps) whp; \
       mu3 vs planted bound"
    [ "seed"; "|Q(I)|"; "tau"; "mu1"; "mu2"; "mu3"; "time" ]
    (List.rev !rows);
  let w1, w2, w3 = !worst in
  Util.record_t1 ~problem:"RCRO" ~guarantee:"(1, 1+e, 3+e)"
    ~measured:(Printf.sprintf "worst (%.2f, %.2f, %.2f*)" w1 w2 w3)
    ~time:(Util.fmt_time !total_t) ~ok:!all_ok

(* ------------------------------------------------------------------ *)
(* F1 -- runtime scaling series.                                       *)
(* ------------------------------------------------------------------ *)

let scaling_cso_lp () =
  let rows =
    List.map
      (fun n ->
        let w = Planted.cso (rng 5) ~n ~m:8 ~k:2 ~z:2 in
        let _, t = Util.time (fun () -> Cso_general.solve w.Planted.instance) in
        (n, t))
      [ 30; 60; 120; 240 ]
  in
  Util.print_table
    ~title:
      "F1.a  CSO LP scaling (complexity column: superlinear in n; LP solves \
       dominate)"
    [ "n"; "time"; "time/n (ms)" ]
    (List.map
       (fun (n, t) ->
         [
           string_of_int n;
           Util.fmt_time t;
           Printf.sprintf "%.2f" (t *. 1e3 /. float_of_int n);
         ])
       rows)

let scaling_gcso_mwu () =
  let rows =
    List.map
      (fun n ->
        let w = Planted.gcso_disjoint (rng 5) ~n ~m:12 ~k:3 ~z:3 in
        let _, t =
          Util.time (fun () ->
              Gcso_general.solve ~eps:0.3 ~rounds:60 w.Planted.geo)
        in
        (n, t))
      [ 100; 200; 400; 800 ]
  in
  Util.print_table
    ~title:
      "F1.b  GCSO MWU scaling (complexity column: near-linear (k+z)(n+m) \
       polylog)"
    [ "n"; "time"; "time/n (ms)" ]
    (List.map
       (fun (n, t) ->
         [
           string_of_int n;
           Util.fmt_time t;
           Printf.sprintf "%.3f" (t *. 1e3 /. float_of_int n);
         ])
       rows)

let scaling_coreset_size () =
  let rows =
    List.map
      (fun n ->
        let w = Planted.gcso_disjoint (rng 5) ~n ~m:12 ~k:3 ~z:3 in
        let r = Gcso_disjoint.solve ~eps:0.3 ~rounds:60 w.Planted.geo in
        (n, r.Gcso_disjoint.coreset_points))
      [ 100; 200; 400; 800 ]
  in
  Util.print_table
    ~title:
      "F1.c  Coreset size vs n (Lemma 2.5 / D.1: |P'| = O(min(n, kz)) -- flat \
       in n)"
    [ "n"; "|coreset|"; "bound km" ]
    (List.map
       (fun (n, c) ->
         [ string_of_int n; string_of_int c; string_of_int (3 * 12) ])
       rows)

let scaling_gcso_d3 () =
  (* Dimension dependence: the same workload in 2 and 3 feature
     dimensions (the polylog^d factors of Theorem 3.2/3.3). *)
  let rows =
    List.concat_map
      (fun d_features ->
        List.map
          (fun n ->
            let w =
              Planted.gcso_disjoint ~d_features (rng 5) ~n ~m:12 ~k:3 ~z:3
            in
            let _, t =
              Util.time (fun () ->
                  Gcso_disjoint.solve ~eps:0.3 ~rounds:60 w.Planted.geo)
            in
            [
              string_of_int (1 + d_features);
              string_of_int n;
              Util.fmt_time t;
            ])
          [ 200; 800 ])
      [ 2; 3 ]
  in
  Util.print_table
    ~title:
      "F1.e  GCSO coreset scaling vs dimension (log^d factors; d counts the \
       id coordinate)"
    [ "d"; "n"; "time" ]
    rows

let scaling_rcto1 () =
  let rows =
    List.map
      (fun n1 ->
        let w = Rgen.rcto1 (rng 5) ~n1 ~n2:10 ~k:2 ~z:2 in
        let _, t =
          Util.time (fun () ->
              Rcto1.solve ~eps:0.3 ~rounds:80 w.Rgen.instance w.Rgen.tree ~k:2
                ~z:2)
        in
        (Rel.Instance.size w.Rgen.instance, t))
      [ 10; 20; 40; 80 ]
  in
  Util.print_table
    ~title:"F1.d  RCTO1 scaling in N (complexity column: O(k^2 N^2 log N))"
    [ "N"; "time"; "time/N^2 (us)" ]
    (List.map
       (fun (n, t) ->
         [
           string_of_int n;
           Util.fmt_time t;
           Printf.sprintf "%.2f" (t *. 1e6 /. float_of_int (n * n));
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* F2 -- MWU convergence (Theorem 3.1).                                *)
(* ------------------------------------------------------------------ *)

let fig_mwu_convergence () =
  (* Theorem 3.1 asserts that the *averaged* oracle solutions satisfy
     every constraint up to an additive eps after O(xi log n / eps^2)
     rounds. We re-run the MWU loop on (LP3) with explicit constraint
     rows (brute-force S_i and L_i, affordable at this size) at the
     critical radius found by the full solver, and report the worst
     slack min_i (A_i psi_hat / t - 1) of the running average. *)
  let w = Planted.gcso_disjoint (rng 9) ~n:100 ~m:10 ~k:3 ~z:2 in
  let g = w.Planted.geo in
  let full = Gcso_general.solve ~eps:0.2 ~rounds:200 g in
  let r = full.Gcso_general.radius in
  let pts = g.Cso_core.Geo_instance.points in
  let rects = g.Cso_core.Geo_instance.rects in
  let n = Array.length pts and m = Array.length rects in
  let k = 3 and z = 2 in
  let s_i =
    Array.init n (fun i ->
        List.filter (fun l -> Point.l2 pts.(i) pts.(l) <= r) (List.init n Fun.id))
  in
  let l_i = g.Cso_core.Geo_instance.membership in
  let sigma = Array.make n (1.0 /. float_of_int n) in
  let x_acc = Array.make n 0.0 and y_acc = Array.make m 0.0 in
  let width = float_of_int (k + z) in
  let eps = 0.2 in
  let checkpoints = [ 1; 2; 5; 10; 20; 40; 80; 160; 320 ] in
  let rows = ref [] in
  let top_k weights kk =
    let idx = Array.init (Array.length weights) Fun.id in
    Array.sort (fun a b -> Float.compare weights.(b) weights.(a)) idx;
    Array.to_list (Array.sub idx 0 (min kk (Array.length idx)))
  in
  for t = 1 to 320 do
    (* Explicit oracle: coefficient of x_l is sigma-mass of constraints
       watching l; of y_j the sigma-mass of points in rect j. *)
    let wx = Array.make n 0.0 and wy = Array.make m 0.0 in
    Array.iteri
      (fun i s ->
        List.iter (fun l -> wx.(l) <- wx.(l) +. sigma.(i)) s;
        List.iter (fun j -> wy.(j) <- wy.(j) +. sigma.(i)) l_i.(i))
      s_i;
    let cx = top_k wx k and cy = top_k wy z in
    List.iter (fun l -> x_acc.(l) <- x_acc.(l) +. 1.0) cx;
    List.iter (fun j -> y_acc.(j) <- y_acc.(j) +. 1.0) cy;
    (* Update sigma from the round solution's violations. *)
    let total = ref 0.0 in
    Array.iteri
      (fun i s ->
        let ai =
          float_of_int (List.length (List.filter (fun l -> List.mem l cx) s))
          +. float_of_int
               (List.length (List.filter (fun j -> List.mem j cy) l_i.(i)))
        in
        let delta = (ai -. 1.0) /. width in
        sigma.(i) <- max 0.0 (sigma.(i) *. (1.0 -. (eps /. 4.0 *. delta)));
        total := !total +. sigma.(i))
      s_i;
    if !total > 0.0 then
      Array.iteri (fun i v -> sigma.(i) <- v /. !total) sigma;
    if List.mem t checkpoints then begin
      (* Worst slack of the running average. *)
      let worst = ref infinity in
      Array.iteri
        (fun i s ->
          let ai =
            List.fold_left (fun acc l -> acc +. (x_acc.(l) /. float_of_int t)) 0.0 s
            +. List.fold_left
                 (fun acc j -> acc +. (y_acc.(j) /. float_of_int t))
                 0.0 l_i.(i)
          in
          if ai -. 1.0 < !worst then worst := ai -. 1.0)
        s_i;
      rows := [ string_of_int t; Printf.sprintf "%+.4f" !worst ] :: !rows
    end
  done;
  Util.print_table
    ~title:
      (Printf.sprintf
         "F2  MWU convergence at the critical radius r = %.3f (Thm 3.1: \
          worst slack of the averaged solution -> >= -eps = -%.1f)"
         r eps)
    [ "round"; "worst slack min_i (A_i psi_hat - 1)" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* F3 -- eps sweep for GCSO.                                           *)
(* ------------------------------------------------------------------ *)

let fig_epsilon_sweep () =
  let w = Planted.gcso_disjoint (rng 11) ~n:150 ~m:10 ~k:3 ~z:2 in
  let g = w.Planted.geo in
  let rows =
    List.map
      (fun eps ->
        (* eps drives the theoretical round count O(xi log n / eps^2);
           cap it so the sweep stays affordable. *)
        let rounds =
          min 2000
            (Cso_lp.Mwu.default_rounds ~m:150 ~width:(float_of_int (3 + 2))
               ~eps)
        in
        let r, t = Util.time (fun () -> Gcso_general.solve ~eps ~rounds g) in
        let cost = Geo_instance.cost g r.Gcso_general.solution in
        [
          f2 eps;
          string_of_int rounds;
          Printf.sprintf "%.3f" (cost /. w.Planted.g_opt_upper);
          string_of_int (List.length r.Gcso_general.solution.Instance.centers);
          Util.fmt_time t;
        ])
      [ 0.15; 0.2; 0.3; 0.5; 0.8 ]
  in
  Util.print_table
    ~title:
      "F3  GCSO MWU quality/time vs eps (rounds follow the Thm 3.1 budget, \
       capped at 2000)"
    [ "eps"; "rounds"; "cost / planted bound"; "|C|"; "time" ]
    rows

(* ------------------------------------------------------------------ *)
(* F4 -- ablations.                                                    *)
(* ------------------------------------------------------------------ *)

let ablation_coreset () =
  (* Same disjoint instance, with and without the coreset stage. *)
  let w = Planted.gcso_disjoint (rng 13) ~n:600 ~m:12 ~k:3 ~z:3 in
  let g = w.Planted.geo in
  let direct, t_direct =
    Util.time (fun () -> (Gcso_general.solve ~eps:0.3 ~rounds:60 g).Gcso_general.solution)
  in
  let coreset, t_coreset =
    Util.time (fun () -> (Gcso_disjoint.solve ~eps:0.3 ~rounds:60 g).Gcso_disjoint.solution)
  in
  Util.print_table
    ~title:
      "F4.a  Ablation: MWU direct (Sec 3.2) vs coreset + MWU (Sec 3.3) on \
       the same disjoint instance (n=600)"
    [ "variant"; "cost / planted bound"; "|C|"; "|H|"; "time" ]
    [
      [
        "MWU on full input";
        Printf.sprintf "%.3f" (Geo_instance.cost g direct /. w.Planted.g_opt_upper);
        string_of_int (List.length direct.Instance.centers);
        string_of_int (List.length direct.Instance.outliers);
        Util.fmt_time t_direct;
      ];
      [
        "coreset + MWU";
        Printf.sprintf "%.3f" (Geo_instance.cost g coreset /. w.Planted.g_opt_upper);
        string_of_int (List.length coreset.Instance.centers);
        string_of_int (List.length coreset.Instance.outliers);
        Util.fmt_time t_coreset;
      ];
    ]

let ablation_cso_coreset () =
  let w = Planted.cso (rng 17) ~n:150 ~m:8 ~k:2 ~z:2 in
  let t = w.Planted.instance in
  let lp, t_lp =
    Util.time (fun () -> (Cso_general.solve t).Cso_general.solution)
  in
  let core, t_core =
    Util.time (fun () -> (Cso_disjoint.solve t).Cso_disjoint.solution)
  in
  Util.print_table
    ~title:
      "F4.b  Ablation: general LP (Sec 2.2) vs coreset LP (Sec 2.3) on the \
       same f=1 instance (n=150)"
    [ "variant"; "cost / planted bound"; "|C|"; "|H|"; "time" ]
    [
      [
        "LP on full input";
        Printf.sprintf "%.3f" (Instance.cost t lp /. w.Planted.opt_upper);
        string_of_int (List.length lp.Instance.centers);
        string_of_int (List.length lp.Instance.outliers);
        Util.fmt_time t_lp;
      ];
      [
        "coreset + LP";
        Printf.sprintf "%.3f" (Instance.cost t core /. w.Planted.opt_upper);
        string_of_int (List.length core.Instance.centers);
        string_of_int (List.length core.Instance.outliers);
        Util.fmt_time t_core;
      ];
    ]

let ablation_bbd_eps () =
  let rngs = rng 19 in
  let pts =
    Array.init 4000 (fun _ ->
        [| Random.State.float rngs 100.0; Random.State.float rngs 100.0 |])
  in
  let tree = Cso_geom.Bbd_tree.build pts in
  let rows =
    List.map
      (fun eps ->
        let total_nodes = ref 0 in
        let (), t =
          Util.time (fun () ->
              for i = 0 to 199 do
                let nodes =
                  Cso_geom.Bbd_tree.ball_query tree ~center:pts.(i)
                    ~radius:10.0 ~eps
                in
                total_nodes := !total_nodes + List.length nodes
              done)
        in
        [
          f2 eps;
          Printf.sprintf "%.1f" (float_of_int !total_nodes /. 200.0);
          Printf.sprintf "%.1fus" (t *. 1e6 /. 200.0);
        ])
      [ 0.05; 0.1; 0.3; 1.0 ]
  in
  Util.print_table
    ~title:
      "F4.c  Ablation: BBD approximate ball queries -- canonical nodes and \
       query time vs eps (n=4000)"
    [ "eps"; "avg canonical nodes"; "avg query time" ]
    rows

let ablation_wspd_granularity () =
  let rngs = rng 23 in
  let rows =
    List.map
      (fun n ->
        let pts =
          Array.init n (fun _ ->
              [| Random.State.float rngs 100.0; Random.State.float rngs 100.0 |])
        in
        let cand = Cso_geom.Wspd.candidate_distances ~eps:0.25 pts in
        [
          string_of_int n;
          string_of_int (n * (n - 1) / 2);
          string_of_int (Array.length cand);
          Printf.sprintf "%.1f%%"
            (100.0
            *. float_of_int (Array.length cand)
            /. float_of_int (max 1 (n * (n - 1) / 2)));
        ])
      [ 100; 400; 1600 ]
  in
  Util.print_table
    ~title:
      "F4.d  Ablation: WSPD candidate distances vs all pairwise distances \
       (binary-search lattice size)"
    [ "n"; "all pairs"; "WSPD candidates"; "fraction" ]
    rows;
  (* Quality impact: solve the same instance over both lattices. *)
  let w = Planted.gcso_disjoint (rng 27) ~n:150 ~m:10 ~k:3 ~z:2 in
  let g = w.Planted.geo in
  let exact_lattice =
    let pts = g.Cso_core.Geo_instance.points in
    let acc = ref [ 0.0 ] in
    Array.iteri
      (fun i p ->
        Array.iteri
          (fun j q -> if i < j then acc := Point.l2 p q :: !acc)
          pts)
      pts;
    Array.of_list (List.sort_uniq compare !acc)
  in
  let on_wspd, t_w =
    Util.time (fun () -> Gcso_general.solve ~eps:0.3 ~rounds:80 g)
  in
  let on_exact, t_e =
    Util.time (fun () ->
        Gcso_general.solve ~eps:0.3 ~rounds:80 ~candidates:exact_lattice g)
  in
  Util.print_table
    ~title:"F4.d' Lattice quality: same instance, WSPD vs exact distances"
    [ "lattice"; "final radius"; "cost / planted bound"; "time" ]
    [
      [
        "WSPD (1+eps)";
        Printf.sprintf "%.4f" on_wspd.Gcso_general.radius;
        Printf.sprintf "%.3f"
          (Geo_instance.cost g on_wspd.Gcso_general.solution
          /. w.Planted.g_opt_upper);
        Util.fmt_time t_w;
      ];
      [
        "exact pairwise";
        Printf.sprintf "%.4f" on_exact.Gcso_general.radius;
        Printf.sprintf "%.3f"
          (Geo_instance.cost g on_exact.Gcso_general.solution
          /. w.Planted.g_opt_upper);
        Util.fmt_time t_e;
      ];
    ]

(* ------------------------------------------------------------------ *)
(* Certified ratios: no ground truth needed. The LP binary search's
   final radius lower-bounds the optimum (Lemma 2.3 i), so cost/radius
   is a certified per-instance approximation factor.                    *)
(* ------------------------------------------------------------------ *)

let certified_ratios () =
  let rows =
    List.concat_map
      (fun n ->
        List.map
          (fun seed ->
            let w = Planted.cso (rng seed) ~n ~m:10 ~k:3 ~z:2 in
            let t = w.Planted.instance in
            let r, time = Util.time (fun () -> Cso_general.solve t) in
            let cost = Instance.cost t r.Cso_general.solution in
            [
              string_of_int n;
              string_of_int seed;
              Printf.sprintf "%.3f" cost;
              Printf.sprintf "%.3f" r.Cso_general.radius;
              Printf.sprintf "%.3f" (cost /. r.Cso_general.radius);
              Util.fmt_time time;
            ])
          seeds)
      [ 100; 200 ]
  in
  Util.print_table
    ~title:
      "Certified ratios: cost / LP-lower-bound <= 2 on every instance \
       (Lemma 2.3 i), no exact solver required"
    [ "n"; "seed"; "cost"; "LP lower bound"; "certified ratio"; "time" ]
    rows

let ablation_gonzalez_fast () =
  let rngs = rng 43 in
  let rows =
    List.map
      (fun (n, k) ->
        (* Clustered input: the triangle-inequality skip fires often. *)
        let pts =
          Array.init n (fun i ->
              let a = float_of_int (i mod k) *. 100.0 in
              [|
                a +. Cso_workload.Gen.uniform rngs ~lo:0.0 ~hi:1.0;
                Cso_workload.Gen.uniform rngs ~lo:0.0 ~hi:1.0;
              |])
        in
        let (_, r_plain), t_plain =
          Util.time (fun () -> Gonzalez.run_points pts ~k)
        in
        let (_, r_fast), t_fast =
          Util.time (fun () -> Gonzalez.run_points_fast pts ~k)
        in
        assert (r_plain = r_fast);
        [
          string_of_int n;
          string_of_int k;
          Util.fmt_time t_plain;
          Util.fmt_time t_fast;
          Printf.sprintf "%.1fx" (t_plain /. max 1e-9 t_fast);
        ])
      [ (5000, 20); (20000, 40); (50000, 60) ]
  in
  Util.print_table
    ~title:
      "F4.e  Ablation: Gonzalez vs triangle-inequality-pruned Gonzalez \
       (identical output, verified)"
    [ "n"; "k"; "plain"; "pruned"; "speedup" ]
    rows

let ablation_streaming () =
  let rngs = rng 47 in
  let rows =
    List.map
      (fun n ->
        let k = 5 in
        let pts =
          Array.init n (fun i ->
              let a = float_of_int (i mod k) *. 80.0 in
              [|
                a +. Cso_workload.Gen.uniform rngs ~lo:0.0 ~hi:2.0;
                Cso_workload.Gen.uniform rngs ~lo:0.0 ~hi:2.0;
              |])
        in
        let t = Cso_kcenter.Streaming.create ~k in
        let (), t_stream =
          Util.time (fun () -> Array.iter (Cso_kcenter.Streaming.insert t) pts)
        in
        let centers = Cso_kcenter.Streaming.centers t in
        let true_cover =
          Array.fold_left
            (fun acc p ->
              max acc
                (List.fold_left
                   (fun m c -> min m (Point.l2 c p))
                   infinity centers))
            0.0 pts
        in
        let (_, gonz), t_gonz =
          Util.time (fun () -> Gonzalez.run_points_fast pts ~k)
        in
        [
          string_of_int n;
          Printf.sprintf "%.3f" true_cover;
          Printf.sprintf "%.3f" (Cso_kcenter.Streaming.radius_bound t);
          Printf.sprintf "%.3f" gonz;
          Printf.sprintf "%.2fx" (true_cover /. gonz);
          Util.fmt_time t_stream;
          Util.fmt_time t_gonz;
        ])
      [ 2000; 20000 ]
  in
  Util.print_table
    ~title:
      "F4.f  Streaming (doubling) k-center vs offline Gonzalez: O(k) memory \
       single pass, certified coverage bound"
    [ "n"; "stream cover"; "certified bound"; "gonzalez"; "ratio"; "t(stream)";
      "t(gonzalez)" ]
    rows

(* ------------------------------------------------------------------ *)
(* Baseline comparison: LP algorithm vs the natural greedy heuristic.  *)
(* ------------------------------------------------------------------ *)

let baseline_comparison () =
  let run name w =
    let t = w.Planted.instance in
    let greedy_sol, t_g = Util.time (fun () -> Baseline.solve t) in
    let lp_sol, t_lp =
      Util.time (fun () -> (Cso_general.solve t).Cso_general.solution)
    in
    let ratio sol = Instance.cost t sol /. w.Planted.opt_upper in
    [
      [
        name ^ " / greedy";
        Printf.sprintf "%.2f" (ratio greedy_sol);
        string_of_int (List.length greedy_sol.Instance.outliers);
        Util.fmt_time t_g;
      ];
      [
        name ^ " / LP (Thm 2.4)";
        Printf.sprintf "%.2f" (ratio lp_sol);
        string_of_int (List.length lp_sol.Instance.outliers);
        Util.fmt_time t_lp;
      ];
    ]
  in
  let easy = Planted.cso (rng 29) ~n:60 ~m:8 ~k:2 ~z:2 in
  let hard = Planted.cso_coordinated (rng 31) ~n:60 ~k:2 ~z:2 in
  Util.print_table
    ~title:
      "Baseline: greedy farthest-point set removal vs the LP algorithm. On \
       independent junk both match; on coordinated outliers (one set covers \
       several scattered junk points) greedy strands half the junk."
    [ "workload / algorithm"; "cost / planted opt bound"; "|H|"; "time" ]
    (run "independent-junk" easy @ run "coordinated-junk" hard)

(* ------------------------------------------------------------------ *)
(* Cyclic queries (Section 4.2): decompose, then run RCRO unchanged.   *)
(* ------------------------------------------------------------------ *)

let cyclic_rcro () =
  let rngs = rng 37 in
  (* Triangle query R(A,B) |><| S(B,C) |><| T(A,C): cyclic. Keys carry
     tiny values; C holds the clustered feature with z planted far
     results. *)
  let schema =
    Rel.Schema.make ~attr_names:[ "A"; "B"; "C" ]
      [ ("R", [ 0; 1 ]); ("S", [ 1; 2 ]); ("T", [ 0; 2 ]) ]
  in
  let nkeys = 14 and z = 2 in
  let key i = float_of_int i *. 1e-6 in
  let feature i =
    if i < nkeys - z then
      (float_of_int (i mod 3) *. 40.0) +. Cso_workload.Gen.uniform rngs ~lo:0.0 ~hi:1.0
    else 1.0e4 +. (300.0 *. float_of_int i)
  in
  let c_of = Array.init nkeys feature in
  let r = List.init nkeys (fun i -> [| key i; key i |]) in
  let s = List.init nkeys (fun i -> [| key i; c_of.(i) |]) in
  let t = List.init nkeys (fun i -> [| key i; c_of.(i) |]) in
  let inst = Rel.Instance.make schema [ r; s; t ] in
  let d, t_dec = Util.time (fun () -> Rel.Hypertree.decompose_exn inst) in
  let report, t_solve =
    Util.time (fun () ->
        Rcro.solve ~rng:(rng 41) d.Rel.Hypertree.instance d.Rel.Hypertree.tree
          ~k:3 ~z)
  in
  let results =
    Rel.Yannakakis.enumerate d.Rel.Hypertree.instance d.Rel.Hypertree.tree
  in
  let out = Rcro.outliers_of report results in
  Util.print_table
    ~title:
      "Cyclic extension (Sec 4.2): triangle query decomposed into bags, \
       then RCRO runs unchanged"
    [ "metric"; "value" ]
    [
      [ "original relations (cyclic)"; "3" ];
      [ "bags after decomposition"; string_of_int (Array.length d.Rel.Hypertree.cover) ];
      [ "decomposition width"; string_of_int d.Rel.Hypertree.width ];
      [ "|Q(I)|"; string_of_int (Array.length results) ];
      [ "result outliers flagged"; string_of_int (List.length out) ];
      [ "planted far results"; string_of_int z ];
      [ "decompose time"; Util.fmt_time t_dec ];
      [ "solve time"; Util.fmt_time t_solve ];
    ]

(* ------------------------------------------------------------------ *)
(* Extension (paper Sec. 5 future work): k-median with set outliers.   *)
(* ------------------------------------------------------------------ *)

let extension_kmedian () =
  let rows =
    List.map
      (fun seed ->
        let w = Planted.cso (rng seed) ~n:25 ~m:6 ~k:2 ~z:2 in
        let t = w.Planted.instance in
        let sol, t_ls = Util.time (fun () -> Kmedian.local_search t) in
        let ls_cost = Kmedian.cost t sol in
        let lb, t_lp = Util.time (fun () -> Kmedian.lp_lower_bound t) in
        let exact_cost =
          match Kmedian.exact t with Some (_, c) -> c | None -> nan
        in
        let lb_str, ratio_str =
          match lb with
          | Some lb ->
              ( Printf.sprintf "%.2f" lb,
                Printf.sprintf "%.3f" (ls_cost /. lb) )
          | None -> ("n/a", "n/a")
        in
        [
          string_of_int seed;
          Printf.sprintf "%.2f" ls_cost;
          Printf.sprintf "%.2f" exact_cost;
          lb_str;
          ratio_str;
          Util.fmt_time t_ls;
          Util.fmt_time t_lp;
        ])
      seeds
  in
  Util.print_table
    ~title:
      "EXT  k-median with set outliers (paper Sec. 5 future work): local \
       search vs exact optimum vs LP lower bound (certified per-instance \
       ratio = LS / LP)"
    [ "seed"; "local search"; "exact"; "LP bound"; "LS/LP"; "t(LS)"; "t(LP)" ]
    rows

(* ------------------------------------------------------------------ *)
(* PAR -- domain-parallel kernels: sequential vs parallel wall-clock    *)
(* for the hot paths wired onto lib/parallel (Gonzalez farthest-point,  *)
(* the MWU violation/update sweep, pairwise-distance construction).     *)
(* Every domain count must produce bit-identical results; divergence    *)
(* is a hard failure, and the timings land in BENCH_*.json so speedup   *)
(* curves survive the run.                                              *)
(* ------------------------------------------------------------------ *)

let with_domains nd f =
  let old = Pool.get_default () in
  let p = Pool.create ~num_domains:nd () in
  Pool.set_default p;
  Fun.protect
    ~finally:(fun () ->
      Pool.set_default old;
      Pool.shutdown p)
    f

let mwu_kernel m =
  (* Oracle: concentrate on the heaviest constraint; violation: one full
     per-constraint sweep per round, fanned out on the default pool the
     same way Gcso_general's sweep is. *)
  let oracle sigma =
    let best = ref 0 in
    Array.iteri (fun i w -> if w > sigma.(!best) then best := i) sigma;
    Some !best
  in
  let violation c =
    Pool.tabulate (Pool.get_default ()) m (fun i ->
        if i = c then 1.0
        else -1.0 +. (float_of_int ((i * 131) mod 97) /. 97.0))
  in
  match Mwu.run ~m ~width:1.0 ~eps:0.3 ~rounds:40 ~oracle ~violation () with
  | Mwu.Feasible sols -> sols
  | Mwu.Infeasible -> []

(* Wall-clock artifacts record the host's available parallelism next to
   each row's domain count: a speedup number is meaningless without
   knowing how many cores backed it. Deterministic counter artifacts
   (BENCH_counters / BENCH_budgets) deliberately do NOT get this field
   -- they are documented as byte-reproducible across machines. *)
let nproc () = Domain.recommended_domain_count ()

(* Best-of-[reps] wall clock (first result kept): the minimum over a
   few repetitions is the standard way to strip scheduler/GC noise from
   a deterministic workload's timing. *)
let timed_best reps f =
  let r0, t0 = Util.time f in
  let best = ref t0 in
  for _ = 2 to reps do
    let _, t = Util.time f in
    if t < !best then best := t
  done;
  (r0, !best)

let read_whole_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Minimal scan for ["name": <int>] in the baseline JSON; the file is
   our own counters_json output, so no general parser is needed. *)
let find_counter json name =
  let needle = Printf.sprintf "\"%s\": " name in
  let nl = String.length needle and jl = String.length json in
  let rec go i =
    if i + nl > jl then None
    else if String.sub json i nl = needle then begin
      let j = ref (i + nl) in
      let start = !j in
      while
        !j < jl && (match json.[!j] with '0' .. '9' -> true | _ -> false)
      do
        incr j
      done;
      if !j > start then Some (int_of_string (String.sub json start (!j - start)))
      else None
    end
    else go (i + 1)
  in
  go 0

let parallel_kernels ~label ~n_gonzalez ~m_mwu ~n_matrix ~domain_counts
    ~json_path () =
  let reps = 3 and time_reps = 5 in
  let max_domains = List.fold_left max 1 domain_counts in
  (* Fan the workload repetitions out over the pool: one independent
     generator state per repetition. *)
  let workloads =
    with_domains max_domains (fun () ->
        Pool.map_array (Pool.get_default ()) ~chunk:1
          (fun seed ->
            let st = Random.State.make [| seed; 271 |] in
            Array.init n_gonzalez (fun _ ->
                [|
                  Random.State.float st 1000.0; Random.State.float st 1000.0;
                |]))
          (Array.init reps Fun.id))
  in
  let mat_pts = Array.sub workloads.(0) 0 (min n_matrix n_gonzalez) in
  let kernels =
    [
      ( "gonzalez",
        n_gonzalez,
        fun () ->
          Marshal.to_string
            (Array.map (fun pts -> Gonzalez.run_points_fast pts ~k:8) workloads)
            [] );
      ("mwu", m_mwu, fun () -> Marshal.to_string (mwu_kernel m_mwu) []);
      ( "distmatrix",
        Array.length mat_pts,
        fun () ->
          Marshal.to_string
            (Space.pairwise_distances (Space.of_points mat_pts))
            [] );
    ]
  in
  let rows = ref [] and json_rows = ref [] and measured = ref [] in
  List.iter
    (fun (kernel, size, f) ->
      let baseline_fp = ref "" and baseline_t = ref 0.0 in
      List.iter
        (fun nd ->
          let fp, t = with_domains nd (fun () -> timed_best time_reps f) in
          let identical =
            if nd = List.hd domain_counts then begin
              baseline_fp := fp;
              baseline_t := t;
              true
            end
            else fp = !baseline_fp
          in
          if not identical then
            failwith
              (Printf.sprintf
                 "parallel kernel %s diverged at %d domains (results are \
                  not bit-identical to the sequential path)"
                 kernel nd);
          let speedup = if t > 0.0 then !baseline_t /. t else 1.0 in
          measured := (kernel, nd, t, speedup) :: !measured;
          rows :=
            [
              kernel;
              string_of_int size;
              string_of_int nd;
              Util.fmt_time t;
              Printf.sprintf "%.2fx" speedup;
              "yes";
            ]
            :: !rows;
          json_rows :=
            Printf.sprintf
              "    {\"kernel\": \"%s\", \"size\": %d, \"domains\": %d, \
               \"seconds\": %.6f, \"speedup_vs_seq\": %.3f, \"identical\": \
               true}"
              kernel size nd t speedup
            :: !json_rows)
        domain_counts)
    kernels;
  Util.print_table
    ~title:
      (Printf.sprintf
         "PAR (%s)  sequential vs parallel kernels (bit-identical outputs \
          enforced)"
         label)
    [ "kernel"; "size"; "domains"; "wall-clock"; "speedup"; "identical" ]
    (List.rev !rows);
  Printf.printf
    "(Speedups are relative to the %d-domain run of the same kernel; on a \
     single-core host they hover around 1x.)\n"
    (List.hd domain_counts);
  Util.write_file json_path
    (Printf.sprintf
       "{\n  \"bench\": \"parallel_kernels\",\n  \"variant\": \"%s\",\n  \
        \"nproc\": %d,\n  \"domain_counts\": [%s],\n  \"rows\": \
        [\n%s\n  ]\n}\n"
       label (nproc ())
       (String.concat ", " (List.map string_of_int domain_counts))
       (String.concat ",\n" (List.rev !json_rows)));
  List.rev !measured

let fig_parallel_scaling () =
  ignore
    (parallel_kernels ~label:"scaling" ~n_gonzalez:50_000 ~m_mwu:50_000
       ~n_matrix:1_500 ~domain_counts:[ 1; 2; 4 ]
       ~json_path:"BENCH_parallel.json" ())

(* Divergence + regression gate for CI (`make bench-smoke`): any
   nondeterminism between the sequential and parallel paths fails the
   run, and at >= 2 domains no kernel may fall below the committed
   speedup baseline. Speedups are stored as integer permille so the
   baseline file round-trips through the same [find_counter] scanner
   the counter gates use. The absolute floor (0.65x) encodes the issue
   gate -- "parallel not slower than sequential at smoke sizes" -- with
   a noise band for best-of-5 timings of millisecond workloads: at
   these sizes the [seq_below] cutoffs keep the work inline, so an
   honest run sits at ~1.0x regardless of core count, while a genuine
   regression (losing the cutoff, or re-oversubscribing a small host)
   measured 0.22-0.47x. *)
let parallel_baseline_path = "BENCH_parallel_baseline.json"

let smoke_parallel () =
  let measured =
    parallel_kernels ~label:"smoke" ~n_gonzalez:2_000 ~m_mwu:2_000
      ~n_matrix:200 ~domain_counts:[ 1; 2 ]
      ~json_path:"BENCH_parallel_smoke.json" ()
  in
  let entries =
    List.filter_map
      (fun (kernel, nd, _t, speedup) ->
        if nd < 2 then None
        else
          Some
            ( Printf.sprintf "par.smoke.%s.d%d.speedup_permille" kernel nd,
              int_of_float (speedup *. 1000.0) ))
      measured
  in
  if entries = [] then failwith "parallel smoke: no multi-domain rows measured";
  if not (Sys.file_exists parallel_baseline_path) then begin
    Util.write_file parallel_baseline_path
      (Printf.sprintf
         "{\n  \"bench\": \"parallel_baseline\",\n  \"workload\": \
          \"smoke\",\n  \"nproc\": %d,\n  \"counters\": %s\n}\n"
         (nproc ())
         (Cso_obs.Obs.counters_json entries));
    Printf.printf
      "parallel smoke: no baseline found; recorded %s (commit it to arm the \
       gate).\n"
      parallel_baseline_path
  end
  else begin
    let baseline = read_whole_file parallel_baseline_path in
    List.iter
      (fun (name, v) ->
        match find_counter baseline name with
        | None ->
            failwith
              (Printf.sprintf "parallel smoke: %s missing from %s" name
                 parallel_baseline_path)
        | Some b ->
            let floor = max 650 (b * 6 / 10) in
            if v < floor then
              failwith
                (Printf.sprintf
                   "parallel smoke: %s regressed to %d permille (baseline \
                    %d, floor %d) -- a wired kernel is slower than its \
                    sequential run"
                   name v b floor))
      entries;
    Printf.printf
      "parallel smoke: parallel paths bit-identical and within the speedup \
       baseline (%d gated kernels).\n"
      (List.length entries)
  end

(* ------------------------------------------------------------------ *)
(* OBS -- deterministic work-counter series (lib/obs).                  *)
(* Counter-vs-n scaling for the instrumented substrates. Counters are   *)
(* machine-independent, so unlike the wall-clock series these numbers   *)
(* must be IDENTICAL across repetitions and across domain counts; any   *)
(* divergence is a hard failure. Only counters go into the JSON         *)
(* artifact (timings would make it non-reproducible byte for byte).     *)
(* ------------------------------------------------------------------ *)

module Obs = Cso_obs.Obs

let with_obs_enabled f =
  let was = Obs.enabled () in
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled was) f

(* One named workload per instrumented stack, sized by [n]. Inputs are
   regenerated from a fixed seed each call so every repetition observes
   the same work. *)
let counter_kernels =
  let pts_of n =
    let st = Random.State.make [| n; 314159 |] in
    Array.init n (fun _ ->
        [| Random.State.float st 1000.0; Random.State.float st 1000.0 |])
  in
  [
    ( "gonzalez",
      [ 1_000; 2_000; 4_000; 8_000 ],
      fun n -> ignore (Gonzalez.run_points_fast (pts_of n) ~k:16) );
    ( "mwu",
      [ 2_000; 8_000; 32_000 ],
      fun n -> ignore (mwu_kernel n) );
    ( "gcso",
      [ 60; 120; 240 ],
      fun n ->
        let w = Planted.gcso_overlapping (rng 9) ~n ~k:3 ~z:2 in
        ignore (Gcso_general.solve ~eps:0.3 ~rounds:15 w.Planted.geo) );
  ]

let fig_counters () =
  with_obs_enabled @@ fun () ->
  let domain_counts = [ 1; 2 ] and reps = 2 in
  let rows = ref [] and json_rows = ref [] in
  List.iter
    (fun (kernel, sizes, run) ->
      List.iter
        (fun n ->
          (* Every (domain count, repetition) must observe the same
             counter deltas: atomic adds commute and the kernels are
             bit-identical across pool sizes, so the totals depend only
             on the work done. *)
          let deltas_runs =
            List.concat_map
              (fun nd ->
                List.init reps (fun _ ->
                    with_domains nd (fun () ->
                        snd (Obs.with_delta (fun () -> run n)))))
              domain_counts
          in
          let deltas = List.hd deltas_runs in
          List.iter
            (fun d ->
              if d <> deltas then
                failwith
                  (Printf.sprintf
                     "counter series for %s (n=%d) not reproducible across \
                      runs/domain counts"
                     kernel n))
            (List.tl deltas_runs);
          let pick name = Option.value ~default:0 (List.assoc_opt name deltas) in
          rows :=
            [
              kernel;
              string_of_int n;
              string_of_int (pick "metric.dist_evals");
              string_of_int (pick "geom.bbd.ball_queries");
              string_of_int (pick "geom.bbd.nodes_visited");
              string_of_int (pick "lp.mwu.rounds");
              string_of_int (pick "cso.gcso.oracle_calls");
            ]
            :: !rows;
          json_rows :=
            Printf.sprintf "    {\"kernel\": \"%s\", \"n\": %d, \"counters\": %s}"
              kernel n (Obs.counters_json deltas)
            :: !json_rows)
        sizes)
    counter_kernels;
  Util.print_table
    ~title:
      "OBS  work-counter scaling series (identical across 2 runs x domain \
       counts {1,2}; full per-counter data in BENCH_counters.json)"
    [ "kernel"; "n"; "dist evals"; "ball queries"; "bbd visits"; "mwu rounds";
      "oracle calls" ]
    (List.rev !rows);
  Util.write_file "BENCH_counters.json"
    (Printf.sprintf
       "{\n  \"bench\": \"counters\",\n  \"domain_counts\": [%s],\n  \
        \"series\": [\n%s\n  ]\n}\n"
       (String.concat ", " (List.map string_of_int domain_counts))
       (String.concat ",\n" (List.rev !json_rows)));
  (* Spans are wall-clock and therefore stdout-only. *)
  match Obs.span_stats () with
  | [] -> ()
  | stats ->
      Util.print_table ~title:"OBS  timed spans (this process, cumulative)"
        [ "span"; "calls"; "seconds" ]
        (List.map
           (fun (p, calls, secs) ->
             [ p; string_of_int calls; Printf.sprintf "%.4f" secs ])
           stats)

(* --- counter-regression gate for `make bench-smoke` --- *)

let smoke_baseline_path = "BENCH_counters_baseline.json"

(* The counters gated against the recorded baseline. Drift beyond 5%
   means an algorithmic change altered how much work the pinned workload
   does; rerecord the baseline deliberately if the change is intended. *)
let smoke_gated =
  [ "metric.dist_evals"; "kcenter.gonzalez.rounds"; "lp.mwu.rounds" ]

let smoke_counter_workload () =
  let st = Random.State.make [| 271828; 7 |] in
  let pts =
    Array.init 2_000 (fun _ ->
        [| Random.State.float st 1000.0; Random.State.float st 1000.0 |])
  in
  ignore (Gonzalez.run_points_fast pts ~k:8);
  ignore (mwu_kernel 2_000)

let smoke_counters () =
  with_obs_enabled @@ fun () ->
  let deltas =
    with_domains 1 (fun () -> snd (Obs.with_delta smoke_counter_workload))
  in
  let current = List.filter (fun (n, _) -> List.mem n smoke_gated) deltas in
  if List.length current <> List.length smoke_gated then
    failwith "counter smoke: pinned workload did not touch a gated counter";
  if not (Sys.file_exists smoke_baseline_path) then begin
    Util.write_file smoke_baseline_path
      (Printf.sprintf
         "{\n  \"bench\": \"counters_baseline\",\n  \"workload\": \
          \"smoke\",\n  \"counters\": %s\n}\n"
         (Obs.counters_json current));
    Printf.printf
      "counter smoke: no baseline found; recorded %s (commit it to arm the \
       gate).\n"
      smoke_baseline_path
  end
  else begin
    let baseline = read_whole_file smoke_baseline_path in
    let rows =
      List.map
        (fun (name, v) ->
          match find_counter baseline name with
          | None ->
              failwith
                (Printf.sprintf "counter smoke: %s missing from %s" name
                   smoke_baseline_path)
          | Some b ->
              let drift =
                if b = 0 then if v = 0 then 0.0 else infinity
                else
                  abs_float (float_of_int v -. float_of_int b)
                  /. float_of_int b
              in
              if drift > 0.05 then
                failwith
                  (Printf.sprintf
                     "counter smoke: %s drifted %.1f%% (baseline %d, now %d; \
                      >5%% gate)"
                     name (100.0 *. drift) b v);
              [ name; string_of_int b; string_of_int v;
                Printf.sprintf "%.2f%%" (100.0 *. drift) ])
        current
    in
    Util.print_table
      ~title:"SMOKE  counter-regression gate (pinned workload, 5% tolerance)"
      [ "counter"; "baseline"; "current"; "drift" ]
      rows;
    Printf.printf "counter smoke: all gated counters within 5%% of baseline.\n"
  end

(* ------------------------------------------------------------------ *)
(* BUDGETS -- machine-checked complexity budgets (Obs.Budget).          *)
(* Each instrumented kernel declares the log-log exponent its           *)
(* counter-vs-n series must fit (Table 1 shapes); the fit runs on       *)
(* deterministic counter deltas, so the emitted JSON is byte-           *)
(* reproducible and any asymptotic regression is a hard failure.        *)
(* ------------------------------------------------------------------ *)

module Bbd = Cso_geom.Bbd_tree
module Range_tree = Cso_geom.Range_tree
module Rect = Cso_geom.Rect

let declared_budgets =
  Bbd.budgets @ Range_tree.budgets @ Gonzalez.budgets @ Mwu.budgets

let budget_pts_of n =
  let st = Random.State.make [| n; 314159 |] in
  Array.init n (fun _ ->
      [| Random.State.float st 1000.0; Random.State.float st 1000.0 |])

(* 64 query centers/rects from a size-independent seed so per-query
   means are comparable across n. *)
let budget_n_queries = 64

let budget_queries () =
  let st = Random.State.make [| 8191; 13 |] in
  Array.init budget_n_queries (fun _ ->
      [| Random.State.float st 1000.0; Random.State.float st 1000.0 |])

let budget_rects () =
  let st = Random.State.make [| 4099; 29 |] in
  Array.init budget_n_queries (fun _ ->
      let lo0 = Random.State.float st 800.0 in
      let lo1 = Random.State.float st 800.0 in
      Rect.make ~lo:[| lo0; lo1 |]
        ~hi:[| lo0 +. 150.0; lo1 +. 150.0 |])

let counter_delta name f =
  let (), deltas = Obs.with_delta f in
  float_of_int (Option.value ~default:0 (List.assoc_opt name deltas))

(* One series per declared budget: sizes and a measurement returning the
   per-size y value (total work, or mean per-query work). *)
let budget_series =
  [
    ( "metric.dist_evals",
      [ 1_000; 2_000; 4_000; 8_000 ],
      fun n ->
        counter_delta "metric.dist_evals" (fun () ->
            ignore (Gonzalez.run_points_fast (budget_pts_of n) ~k:16)) );
    ( "geom.bbd.nodes_per_query",
      [ 1_000; 2_000; 4_000; 8_000 ],
      fun n ->
        let t = Bbd.build (budget_pts_of n) in
        let queries = budget_queries () in
        counter_delta "geom.bbd.nodes_visited" (fun () ->
            Array.iter
              (fun c ->
                ignore (Bbd.ball_query t ~center:c ~radius:120.0 ~eps:0.3))
              queries)
        /. float_of_int budget_n_queries );
    ( "geom.rtree.canonical_per_query",
      [ 1_000; 2_000; 4_000; 8_000 ],
      fun n ->
        let t = Range_tree.build (budget_pts_of n) in
        let rects = budget_rects () in
        counter_delta "geom.rtree.canonical_nodes" (fun () ->
            Array.iter (fun r -> ignore (Range_tree.query_nodes t r)) rects)
        /. float_of_int budget_n_queries );
    ( "lp.mwu.rounds",
      [ 2_000; 8_000; 32_000 ],
      fun n -> counter_delta "lp.mwu.rounds" (fun () -> ignore (mwu_kernel n))
    );
  ]

let budget_of name =
  match
    List.find_opt (fun b -> b.Obs.Budget.b_name = name) declared_budgets
  with
  | Some b -> b
  | None -> failwith ("no declared budget for series " ^ name)

(* Runs every budget series (optionally scaled down), hard-fails on
   cross-domain-count divergence and on any budget violation, and writes
   the rows to [json_path]. Returns the rendered row strings. *)
let run_budget_checks ~label ~scale ~domain_counts ~json_path () =
  with_obs_enabled @@ fun () ->
  let rows = ref [] and json_rows = ref [] in
  List.iter
    (fun (name, sizes, measure) ->
      let sizes =
        if scale = 1 then sizes else List.map (fun n -> n / scale) sizes
      in
      let points_runs =
        List.map
          (fun nd ->
            with_domains nd (fun () ->
                List.map (fun n -> (float_of_int n, measure n)) sizes))
          domain_counts
      in
      let points = List.hd points_runs in
      List.iter
        (fun p ->
          if p <> points then
            failwith
              (Printf.sprintf
                 "budget series %s not reproducible across domain counts"
                 name))
        (List.tl points_runs);
      let b = budget_of name in
      let fitted =
        match Obs.Budget.check b points with
        | Ok fitted -> fitted
        | Error msg -> failwith msg
      in
      rows :=
        [
          name;
          Printf.sprintf "%.2f" b.Obs.Budget.b_expected;
          Printf.sprintf "%.2f" b.Obs.Budget.b_tolerance;
          Printf.sprintf "%.3f" fitted;
          "ok";
        ]
        :: !rows;
      json_rows :=
        ("    " ^ Obs.Budget.row_json b ~fitted ~points) :: !json_rows)
    budget_series;
  Util.print_table
    ~title:
      (Printf.sprintf
         "BUDGETS (%s)  fitted log-log exponents vs declared Table-1 shapes \
          (identical across domain counts {%s})"
         label
         (String.concat "," (List.map string_of_int domain_counts)))
    [ "series"; "expected"; "tolerance"; "fitted"; "verdict" ]
    (List.rev !rows);
  Util.write_file json_path
    (Printf.sprintf
       "{\n  \"bench\": \"budgets\",\n  \"variant\": \"%s\",\n  \
        \"domain_counts\": [%s],\n  \"budgets\": [\n%s\n  ]\n}\n"
       label
       (String.concat ", " (List.map string_of_int domain_counts))
       (String.concat ",\n" (List.rev !json_rows)));
  List.rev !json_rows

let fig_budgets () =
  ignore
    (run_budget_checks ~label:"full" ~scale:1 ~domain_counts:[ 1; 2 ]
       ~json_path:"BENCH_budgets.json" ())

let budgets_baseline_path = "BENCH_budgets_baseline.json"

(* Budget gate for `make bench-smoke`: check the declared exponents and
   gate the fitted values against the committed baseline (0.1 absolute
   drift — fits are deterministic, so any drift means the workload or
   the algorithm changed). Runs at full series sizes: the whole sweep is
   sub-second, and small-n prefixes inflate polylog slopes. *)
let smoke_budgets () =
  let json_rows =
    run_budget_checks ~label:"smoke" ~scale:1 ~domain_counts:[ 1; 2 ]
      ~json_path:"BENCH_budgets_smoke.json" ()
  in
  let body =
    Printf.sprintf
      "{\n  \"bench\": \"budgets\",\n  \"variant\": \"baseline\",\n  \
       \"budgets\": [\n%s\n  ]\n}\n"
      (String.concat ",\n" json_rows)
  in
  if not (Sys.file_exists budgets_baseline_path) then begin
    Util.write_file budgets_baseline_path body;
    Printf.printf
      "budget smoke: no baseline found; recorded %s (commit it to arm the \
       gate).\n"
      budgets_baseline_path
  end
  else begin
    let baseline = read_whole_file budgets_baseline_path in
    let doc = Obs.Json.parse baseline in
    let baseline_rows =
      match Obs.Json.member "budgets" doc with
      | Some (Obs.Json.Arr rows) -> rows
      | _ -> failwith (budgets_baseline_path ^ ": no \"budgets\" array")
    in
    let fitted_of rows name =
      List.find_map
        (fun row ->
          match (Obs.Json.member "name" row, Obs.Json.member "fitted" row) with
          | Some (Obs.Json.Str n), Some (Obs.Json.Num f) when n = name ->
              Some f
          | _ -> None)
        rows
    in
    let current_rows =
      match
        Obs.Json.member "budgets"
          (Obs.Json.parse
             (Printf.sprintf "{\"budgets\": [\n%s\n]}"
                (String.concat ",\n" json_rows)))
      with
      | Some (Obs.Json.Arr rows) -> rows
      | _ -> assert false
    in
    List.iter
      (fun (name, _, _) ->
        let b =
          match fitted_of baseline_rows name with
          | Some f -> f
          | None ->
              failwith
                (Printf.sprintf "budget smoke: %s missing from %s" name
                   budgets_baseline_path)
        in
        let c = Option.get (fitted_of current_rows name) in
        if abs_float (c -. b) > 0.1 then
          failwith
            (Printf.sprintf
               "budget smoke: %s fitted exponent drifted (baseline %.3f, now \
                %.3f; >0.1 gate)"
               name b c))
      budget_series;
    Printf.printf
      "budget smoke: all fitted exponents within 0.1 of baseline and inside \
       declared tolerances.\n"
  end

(* ------------------------------------------------------------------ *)
(* KERNELS -- cache-resident compute core (DESIGN.md, section 3e).      *)
(* Boxed Point kernels vs the packed SoA store, the batched BBD ball    *)
(* sweep under domain counts {1,2}, and the flat simplex tableau vs     *)
(* the row-of-rows reference. Checksums, counter deltas and histogram   *)
(* deltas must be bit-identical between the paired variants; wall-clock *)
(* lands in BENCH_kernels.json, and the deterministic work counts are   *)
(* gated exactly against a committed baseline in `make bench-smoke`.    *)
(* ------------------------------------------------------------------ *)

module Points = Cso_metric.Points
module Simplex = Cso_lp.Simplex

(* Timing sections run with counters off: an atomic add per call would
   dominate a four-flop distance kernel and mask the layout effect the
   bench exists to measure. Identity sections re-run with counters on. *)
let with_obs_disabled f =
  let was = Obs.enabled () in
  Obs.set_enabled false;
  Fun.protect ~finally:(fun () -> Obs.set_enabled was) f

let kernel_pts_of n d =
  let st = Random.State.make [| n; d; 424243 |] in
  Array.init n (fun _ -> Array.init d (fun _ -> Random.State.float st 1000.0))

(* Fixed total eval budget per row so wall-clock is comparable across
   sizes. Each pass sweeps the whole store against a shifted copy of
   itself -- the access pattern of the Gonzalez and violation sweeps. *)
let kernel_eval_target = 1 lsl 22
let kernel_passes n = max 1 (kernel_eval_target / n)

(* Scattered partner index: a Weyl-style multiplicative hash, masked to
   [0, n) (sizes are powers of two). Sequential partners would let the
   hardware prefetcher hide the boxed layout's pointer chase entirely;
   scattered access is what the BBD / ball-query sweeps actually do, so
   that is the pattern the bench measures. Cheap (one multiply + mask,
   no division) and identical for both variants. *)
let kernel_partner n i p = (((i + p) * 0x9E3779B1) land max_int) land (n - 1)

let boxed_sweep pts passes =
  let n = Array.length pts in
  let acc = ref 0.0 in
  for p = 1 to passes do
    for i = 0 to n - 1 do
      acc := !acc +. Point.l2_sq pts.(i) pts.(kernel_partner n i p)
    done
  done;
  !acc

let packed_sweep c passes =
  let n = Points.length c in
  let acc = ref 0.0 in
  for p = 1 to passes do
    for i = 0 to n - 1 do
      acc := !acc +. Points.l2_sq_idx c i (kernel_partner n i p)
    done
  done;
  !acc

(* Row sweeps: all n distances from one (rotating) center per pass. The
   boxed API can only express this as n kernel calls; the packed store
   has the batch [l2_sq_to] row kernel. The checksum folds one rotating
   element per pass so the full result feeds the bit-identity check. *)
let boxed_row_sweep pts dst passes =
  let n = Array.length pts in
  let acc = ref 0.0 in
  for p = 0 to passes - 1 do
    let i = (p * 131) land (n - 1) in
    let pi = pts.(i) in
    for j = 0 to n - 1 do
      dst.(j) <- Point.l2_sq pi pts.(j)
    done;
    acc := !acc +. dst.((p * 17) land (n - 1))
  done;
  !acc

let packed_row_sweep c dst passes =
  let n = Points.length c in
  let acc = ref 0.0 in
  for p = 0 to passes - 1 do
    Points.l2_sq_to c ((p * 131) land (n - 1)) dst;
    acc := !acc +. dst.((p * 17) land (n - 1))
  done;
  !acc

(* Block sweeps: [kernel_block_rows] consecutive query rows per pass
   against the whole store ([rows * n] distances in the block layout of
   [l2_sq_block]). All variants produce the SAME block in [dst] — the
   boxed and row-kernel baselines can only express it as per-row work
   (the row kernel additionally needs a scratch row + blit, since
   [l2_sq_to] always writes at offset 0): the store streams through
   cache once per row, while the tiled kernel reuses each loaded j-tile
   for every row of the block and writes each element exactly once.
   All three fold the same rotating block element into the checksum so
   full results feed the bit-identity check. [rows] and [rows * n]
   stay powers of two (sizes are). *)
let kernel_block_rows = 16

let kernel_block_geometry n =
  let rows = min kernel_block_rows n in
  (rows, max 1 (kernel_eval_target / (rows * n)))

let boxed_block_sweep pts dst passes =
  let n = Array.length pts in
  let rows = fst (kernel_block_geometry n) in
  let acc = ref 0.0 in
  for p = 0 to passes - 1 do
    let lo = min ((p * 131) land (n - 1)) (n - rows) in
    for r = 0 to rows - 1 do
      let pi = pts.(lo + r) in
      for j = 0 to n - 1 do
        dst.((r * n) + j) <- Point.l2_sq pi pts.(j)
      done
    done;
    acc := !acc +. dst.((p * 17) land ((rows * n) - 1))
  done;
  !acc

let rowloop_block_sweep c dst passes =
  let n = Points.length c in
  let rows = fst (kernel_block_geometry n) in
  let scratch = Array.make n 0.0 in
  let acc = ref 0.0 in
  for p = 0 to passes - 1 do
    let lo = min ((p * 131) land (n - 1)) (n - rows) in
    for r = 0 to rows - 1 do
      Points.l2_sq_to c (lo + r) scratch;
      Array.blit scratch 0 dst (r * n) n
    done;
    acc := !acc +. dst.((p * 17) land ((rows * n) - 1))
  done;
  !acc

let tiled_block_sweep c dst passes =
  let n = Points.length c in
  let rows = fst (kernel_block_geometry n) in
  let acc = ref 0.0 in
  for p = 0 to passes - 1 do
    let lo = min ((p * 131) land (n - 1)) (n - rows) in
    Points.l2_sq_block c ~lo ~hi:(lo + rows) dst;
    acc := !acc +. dst.((p * 17) land ((rows * n) - 1))
  done;
  !acc

(* Float32 store variants: same shapes over the quantized coordinates.
   Identity here is f32-vs-f32 (row kernel vs tiled block kernel over
   the same store); f32-vs-f64 closeness is a points.mli error contract
   checked in the test/fuzz suites, not a bench identity. *)
let f32_row_block_sweep s dst passes =
  let n = Points.F32.length s in
  let rows = fst (kernel_block_geometry n) in
  let scratch = Array.make n 0.0 in
  let acc = ref 0.0 in
  for p = 0 to passes - 1 do
    let lo = min ((p * 131) land (n - 1)) (n - rows) in
    for r = 0 to rows - 1 do
      Points.F32.l2_sq_to s (lo + r) scratch;
      Array.blit scratch 0 dst (r * n) n
    done;
    acc := !acc +. dst.((p * 17) land ((rows * n) - 1))
  done;
  !acc

let f32_tiled_block_sweep s dst passes =
  let n = Points.F32.length s in
  let rows = fst (kernel_block_geometry n) in
  let acc = ref 0.0 in
  for p = 0 to passes - 1 do
    let lo = min ((p * 131) land (n - 1)) (n - rows) in
    Points.F32.l2_sq_block s ~lo ~hi:(lo + rows) dst;
    acc := !acc +. dst.((p * 17) land ((rows * n) - 1))
  done;
  !acc

(* Random instances with the exact shape of Cso_general's coverage LP:
   a center-capacity row (Le k), an outlier-capacity row (Le z) and one
   Ge-1 coverage row per element, over [0,1] box variables. *)
let coverage_lp ~n ~m ~k ~z seed =
  let st = Random.State.make [| n; m; seed; 31337 |] in
  let nv = n + m in
  let centers_cap =
    let a = Array.make nv 0.0 in
    for i = 0 to n - 1 do
      a.(i) <- 1.0
    done;
    (a, Simplex.Le, float_of_int k)
  in
  let outliers_cap =
    let a = Array.make nv 0.0 in
    for j = 0 to m - 1 do
      a.(n + j) <- 1.0
    done;
    (a, Simplex.Le, float_of_int z)
  in
  let coverage =
    List.init n (fun i ->
        let a = Array.make nv 0.0 in
        a.(i) <- 1.0;
        for _ = 1 to 1 + Random.State.int st 3 do
          a.(Random.State.int st n) <- 1.0
        done;
        for _ = 1 to 1 + Random.State.int st 2 do
          a.(n + Random.State.int st m) <- 1.0
        done;
        (a, Simplex.Ge, 1.0))
  in
  {
    Simplex.num_vars = nv;
    objective = Array.make nv 0.0;
    constraints = centers_cap :: outliers_cap :: coverage;
    bounds = Simplex.box nv;
  }

let kernel_lps () =
  List.concat_map
    (fun (n, m, k, z, count) ->
      List.init count (fun s -> coverage_lp ~n ~m ~k ~z s))
    [ (24, 10, 4, 3, 6); (40, 14, 5, 4, 4); (56, 18, 6, 4, 2) ]

(* Shared by [fig_kernels] and [smoke_kernels]: runs every paired
   variant, hard-fails on any identity violation (and, at n >= 4096, on
   the packed kernel being slower than the boxed one), writes
   [json_path] and returns the deterministic work counts. *)
let run_kernel_checks ~label ~sizes ~balls_n ~reps ~json_path () =
  let rows = ref [] and json_rows = ref [] and counts = ref [] in
  let record kernel size variant secs speedup =
    rows :=
      [ kernel; size; variant; Util.fmt_time secs;
        Printf.sprintf "%.2fx" speedup ]
      :: !rows;
    json_rows :=
      Printf.sprintf
        "    {\"kernel\": \"%s\", \"size\": \"%s\", \"variant\": \"%s\", \
         \"seconds\": %.6f, \"speedup\": %.3f}"
        kernel size variant secs speedup
      :: !json_rows
  in
  let pick deltas name =
    Option.value ~default:0 (List.assoc_opt name deltas)
  in
  (* --- distance kernels: boxed Point vs packed SoA --- *)
  List.iter
    (fun (n, d) ->
      if n land (n - 1) <> 0 then
        invalid_arg "run_kernel_checks: sizes must be powers of two";
      let pts = kernel_pts_of n d in
      let c = Points.of_array pts in
      let passes = kernel_passes n in
      let rb, db =
        with_obs_enabled (fun () ->
            Obs.with_delta (fun () -> boxed_sweep pts passes))
      in
      let rp, dp =
        with_obs_enabled (fun () ->
            Obs.with_delta (fun () -> packed_sweep c passes))
      in
      if Int64.bits_of_float rb <> Int64.bits_of_float rp then
        failwith
          (Printf.sprintf
             "kernel check: packed l2_sq checksum diverged from boxed at \
              n=%d d=%d"
             n d);
      if db <> dp then
        failwith
          (Printf.sprintf
             "kernel check: packed counter deltas diverged from boxed at \
              n=%d d=%d"
             n d);
      let evals = pick dp "metric.dist_evals" in
      if evals <> passes * n then
        failwith
          (Printf.sprintf
             "kernel check: expected %d dist evals at n=%d d=%d, counted %d"
             (passes * n) n d evals);
      counts := (Printf.sprintf "kernels.dist_evals.n%d_d%d" n d, evals)
                :: !counts;
      let _, tb =
        with_obs_disabled (fun () ->
            timed_best reps (fun () -> boxed_sweep pts passes))
      in
      let _, tp =
        with_obs_disabled (fun () ->
            timed_best reps (fun () -> packed_sweep c passes))
      in
      if n >= 4096 && tp > tb then
        failwith
          (Printf.sprintf
             "kernel check: packed l2_sq SLOWER than boxed at n=%d d=%d \
              (%.6fs vs %.6fs); the SoA layout must never lose at this size"
             n d tp tb);
      let size = Printf.sprintf "n=%d d=%d" n d in
      record "l2_sq" size "boxed" tb 1.0;
      record "l2_sq" size "packed" tp (if tp > 0.0 then tb /. tp else 1.0);
      (* Row sweeps: boxed per-call loop vs the batch row kernel. *)
      let db_dst = Array.make n 0.0 and dp_dst = Array.make n 0.0 in
      let rrb, rdb =
        with_obs_enabled (fun () ->
            Obs.with_delta (fun () -> boxed_row_sweep pts db_dst passes))
      in
      let rrp, rdp =
        with_obs_enabled (fun () ->
            Obs.with_delta (fun () -> packed_row_sweep c dp_dst passes))
      in
      if
        Int64.bits_of_float rrb <> Int64.bits_of_float rrp
        || not
             (Array.for_all2
                (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
                db_dst dp_dst)
      then
        failwith
          (Printf.sprintf
             "kernel check: l2_sq_to row kernel diverged from per-call \
              sweep at n=%d d=%d"
             n d);
      if rdb <> rdp then
        failwith
          (Printf.sprintf
             "kernel check: row-kernel counter deltas diverged at n=%d d=%d"
             n d);
      let row_evals = pick rdp "metric.dist_evals" in
      if row_evals <> passes * n then
        failwith
          (Printf.sprintf
             "kernel check: expected %d row dist evals at n=%d d=%d, \
              counted %d"
             (passes * n) n d row_evals);
      counts := (Printf.sprintf "kernels.row_evals.n%d_d%d" n d, row_evals)
                :: !counts;
      let _, trb =
        with_obs_disabled (fun () ->
            timed_best reps (fun () -> boxed_row_sweep pts db_dst passes))
      in
      let _, trp =
        with_obs_disabled (fun () ->
            timed_best reps (fun () -> packed_row_sweep c dp_dst passes))
      in
      if n >= 4096 && trp > trb then
        failwith
          (Printf.sprintf
             "kernel check: packed row kernel SLOWER than boxed at n=%d \
              d=%d (%.6fs vs %.6fs)"
             n d trp trb);
      record "l2_sq_row" size "boxed" trb 1.0;
      record "l2_sq_row" size "packed" trp
        (if trp > 0.0 then trb /. trp else 1.0);
      (* Tiled block kernel: [rows] query rows per pass. Boxed per-call
         loop and packed row-kernel loop are the baselines; the tiled
         kernel must be bit-identical to both and, at n >= 4096, not
         slower than either (the j-tile reuse is pure win once the
         store spills L1). *)
      let rows_b, passes_b = kernel_block_geometry n in
      let block_boxed = Array.make (rows_b * n) 0.0 in
      let block_rowbuf = Array.make (rows_b * n) 0.0 in
      let block_tiled = Array.make (rows_b * n) 0.0 in
      let cbb, dbb =
        with_obs_enabled (fun () ->
            Obs.with_delta (fun () -> boxed_block_sweep pts block_boxed passes_b))
      in
      let cbr, dbr =
        with_obs_enabled (fun () ->
            Obs.with_delta (fun () ->
                rowloop_block_sweep c block_rowbuf passes_b))
      in
      let cbt, dbt =
        with_obs_enabled (fun () ->
            Obs.with_delta (fun () -> tiled_block_sweep c block_tiled passes_b))
      in
      if
        Int64.bits_of_float cbb <> Int64.bits_of_float cbt
        || Int64.bits_of_float cbr <> Int64.bits_of_float cbt
        || not
             (Array.for_all2
                (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
                block_boxed block_tiled)
        || not
             (Array.for_all2
                (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
                block_rowbuf block_tiled)
      then
        failwith
          (Printf.sprintf
             "kernel check: tiled l2_sq_block diverged from the row sweeps \
              at n=%d d=%d"
             n d);
      if dbb <> dbr || dbb <> dbt then
        failwith
          (Printf.sprintf
             "kernel check: block-kernel counter deltas diverged at n=%d d=%d"
             n d);
      let block_evals = pick dbt "metric.dist_evals" in
      if block_evals <> passes_b * rows_b * n then
        failwith
          (Printf.sprintf
             "kernel check: expected %d block dist evals at n=%d d=%d, \
              counted %d"
             (passes_b * rows_b * n) n d block_evals);
      counts :=
        (Printf.sprintf "kernels.block_evals.n%d_d%d" n d, block_evals)
        :: !counts;
      let _, tbb =
        with_obs_disabled (fun () ->
            timed_best reps (fun () -> boxed_block_sweep pts block_boxed passes_b))
      in
      let _, tbr =
        with_obs_disabled (fun () ->
            timed_best reps (fun () ->
                rowloop_block_sweep c block_rowbuf passes_b))
      in
      let _, tbt =
        with_obs_disabled (fun () ->
            timed_best reps (fun () -> tiled_block_sweep c block_tiled passes_b))
      in
      if n >= 4096 && tbt > tbb then
        failwith
          (Printf.sprintf
             "kernel check: tiled block kernel SLOWER than boxed at n=%d \
              d=%d (%.6fs vs %.6fs)"
             n d tbt tbb);
      if n >= 4096 && tbt > tbr *. 1.25 then
        failwith
          (Printf.sprintf
             "kernel check: tiled block kernel fell >25%% behind the \
              row-kernel loop at n=%d d=%d (%.6fs vs %.6fs)"
             n d tbt tbr);
      record "l2_sq_block" size "boxed" tbb 1.0;
      record "l2_sq_block" size "rows" tbr
        (if tbr > 0.0 then tbb /. tbr else 1.0);
      record "l2_sq_block" size "tiled" tbt
        (if tbt > 0.0 then tbb /. tbt else 1.0);
      (* Float32 backing: identity is f32-row vs f32-tiled over the same
         quantized store; wall-clock is recorded against the float64
         tiled kernel (the memory-bandwidth story), with no speed gate —
         the win only materializes on stores that spill cache. *)
      let s32 = Points.F32.of_points c in
      let f32_rowbuf = Array.make (rows_b * n) 0.0 in
      let f32_tiled = Array.make (rows_b * n) 0.0 in
      let c32r, d32r =
        with_obs_enabled (fun () ->
            Obs.with_delta (fun () ->
                f32_row_block_sweep s32 f32_rowbuf passes_b))
      in
      let c32t, d32t =
        with_obs_enabled (fun () ->
            Obs.with_delta (fun () ->
                f32_tiled_block_sweep s32 f32_tiled passes_b))
      in
      if
        Int64.bits_of_float c32r <> Int64.bits_of_float c32t
        || not
             (Array.for_all2
                (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
                f32_rowbuf f32_tiled)
      then
        failwith
          (Printf.sprintf
             "kernel check: f32 tiled kernel diverged from the f32 row \
              kernel at n=%d d=%d"
             n d);
      if d32r <> d32t then
        failwith
          (Printf.sprintf
             "kernel check: f32 kernel counter deltas diverged at n=%d d=%d"
             n d);
      let f32_evals = pick d32t "metric.dist_evals" in
      if f32_evals <> passes_b * rows_b * n then
        failwith
          (Printf.sprintf
             "kernel check: expected %d f32 dist evals at n=%d d=%d, \
              counted %d"
             (passes_b * rows_b * n) n d f32_evals);
      counts :=
        (Printf.sprintf "kernels.f32_block_evals.n%d_d%d" n d, f32_evals)
        :: !counts;
      let _, t32 =
        with_obs_disabled (fun () ->
            timed_best reps (fun () -> f32_tiled_block_sweep s32 f32_tiled passes_b))
      in
      record "l2_sq_block_f32" size "f64_tiled" tbt 1.0;
      record "l2_sq_block_f32" size "f32_tiled" t32
        (if t32 > 0.0 then tbt /. t32 else 1.0))
    sizes;
  (* --- batched BBD ball sweep: the one pooled kernel here, so results,
     counters and histograms must agree across domain counts {1,2} --- *)
  let bpts = kernel_pts_of balls_n 2 in
  let bt = Bbd.build bpts in
  let radius = 120.0 and eps = 0.3 in
  let ball_run nd =
    with_domains nd (fun () ->
        with_obs_enabled (fun () ->
            Obs.Hist.with_delta (fun () ->
                Obs.with_delta (fun () ->
                    Marshal.to_string (Bbd.balls_all bt ~radius ~eps) []))))
  in
  let run1 = ball_run 1 in
  if ball_run 2 <> run1 then
    failwith
      "kernel check: balls_all diverged across domain counts {1,2} \
       (results, counters and histograms must be bit-identical)";
  let (_, bd), _ = run1 in
  counts :=
    ("kernels.balls_all.nodes_visited", pick bd "geom.bbd.nodes_visited")
    :: ("kernels.balls_all.queries", pick bd "geom.bbd.ball_queries")
    :: !counts;
  let ball_t1 = ref 0.0 in
  List.iter
    (fun nd ->
      let _, t =
        with_domains nd (fun () ->
            with_obs_disabled (fun () ->
                timed_best reps (fun () ->
                    ignore (Bbd.balls_all bt ~radius ~eps))))
      in
      if nd = 1 then ball_t1 := t;
      record "balls_all"
        (Printf.sprintf "n=%d d=2" balls_n)
        (Printf.sprintf "%d domains" nd)
        t
        (if t > 0.0 then !ball_t1 /. t else 1.0))
    [ 1; 2 ];
  (* --- flat simplex tableau vs row-of-rows reference --- *)
  let lps = kernel_lps () in
  let lp_run solver =
    with_obs_enabled (fun () ->
        Obs.Hist.with_delta (fun () ->
            Obs.with_delta (fun () ->
                List.map (fun lp -> Marshal.to_string (solver lp) []) lps)))
  in
  let ((out_f, cd_f), hd_f) = lp_run Simplex.solve in
  let ((out_r, cd_r), hd_r) = lp_run Simplex.solve_reference in
  if out_f <> out_r then
    failwith "kernel check: flat simplex outcomes diverged from reference";
  if cd_f <> cd_r || hd_f <> hd_r then
    failwith
      "kernel check: flat simplex counters/histograms diverged from \
       reference (lp.simplex.pivots_per_solve must be unchanged)";
  counts :=
    ("kernels.simplex.pivots", pick cd_f "lp.simplex.pivots")
    :: ("kernels.simplex.solves", pick cd_f "lp.simplex.solves")
    :: !counts;
  let _, tr =
    with_obs_disabled (fun () ->
        timed_best reps (fun () ->
            List.iter (fun lp -> ignore (Simplex.solve_reference lp)) lps))
  in
  let _, tf =
    with_obs_disabled (fun () ->
        timed_best reps (fun () ->
            List.iter (fun lp -> ignore (Simplex.solve lp)) lps))
  in
  let lp_size = Printf.sprintf "%d coverage LPs" (List.length lps) in
  record "simplex" lp_size "reference" tr 1.0;
  record "simplex" lp_size "flat" tf (if tf > 0.0 then tr /. tf else 1.0);
  let counts =
    List.sort (fun (a, _) (b, _) -> String.compare a b) !counts
  in
  Util.print_table
    ~title:
      (Printf.sprintf
         "KERNELS (%s)  boxed vs packed compute core (bit-identical \
          outputs/counters enforced; speedups vs the paired baseline)"
         label)
    [ "kernel"; "size"; "variant"; "wall-clock"; "speedup" ]
    (List.rev !rows);
  Util.write_file json_path
    (Printf.sprintf
       "{\n  \"bench\": \"kernels\",\n  \"variant\": \"%s\",\n  \"nproc\": \
        %d,\n  \"domains\": %d,\n  \"rows\": [\n%s\n  ],\n  \"counters\": \
        %s\n}\n"
       label (nproc ())
       (Pool.default_size ())
       (String.concat ",\n" (List.rev !json_rows))
       (Obs.counters_json counts));
  counts

let fig_kernels () =
  ignore
    (run_kernel_checks ~label:"full"
       ~sizes:[ (1024, 4); (4096, 4); (16384, 4); (16384, 2) ]
       ~balls_n:4_000 ~reps:3 ~json_path:"BENCH_kernels.json" ())

let kernels_baseline_path = "BENCH_kernels_baseline.json"

(* Kernel gate for `make bench-smoke`: beyond the identity and
   packed-not-slower checks inside [run_kernel_checks], the
   deterministic work counts (dist evals, BBD sweep work, simplex
   pivots) must match the committed baseline exactly -- they depend
   only on the pinned workload, so any drift is an algorithmic change
   that must be recorded deliberately. *)
let smoke_kernels () =
  let counts =
    run_kernel_checks ~label:"smoke" ~sizes:[ (4096, 4) ] ~balls_n:2_000
      ~reps:3 ~json_path:"BENCH_kernels_smoke.json" ()
  in
  if not (Sys.file_exists kernels_baseline_path) then begin
    Util.write_file kernels_baseline_path
      (Printf.sprintf
         "{\n  \"bench\": \"kernels_baseline\",\n  \"workload\": \
          \"smoke\",\n  \"counters\": %s\n}\n"
         (Obs.counters_json counts));
    Printf.printf
      "kernel smoke: no baseline found; recorded %s (commit it to arm the \
       gate).\n"
      kernels_baseline_path
  end
  else begin
    let baseline = read_whole_file kernels_baseline_path in
    List.iter
      (fun (name, v) ->
        match find_counter baseline name with
        | None ->
            failwith
              (Printf.sprintf "kernel smoke: %s missing from %s" name
                 kernels_baseline_path)
        | Some b ->
            if v <> b then
              failwith
                (Printf.sprintf
                   "kernel smoke: %s drifted (baseline %d, now %d; counts \
                    are deterministic, so the gate is exact)"
                   name b v))
      counts;
    Printf.printf
      "kernel smoke: packed/boxed and flat/reference paths bit-identical; \
       all work counts match baseline exactly.\n"
  end

(* ------------------------------------------------------------------ *)
(* Dynamic trees: amortized update cost vs rebuild-per-insert          *)
(* ------------------------------------------------------------------ *)

module Dyn = Cso_geom.Dynamic
module Drift = Cso_workload.Drift

(* Fixed-seed drift workload per size, so both the replayed work and
   the logarithmic-method rebuild counters are deterministic. *)
let dynamic_workload n =
  let rng = Random.State.make [| n; 9090 |] in
  Drift.drifting rng ~n_ops:n ~k:4 ~z:0 ~churn:0.25

(* Fixed-seed delete-heavy churn workload: the tombstone adversary the
   per-level partial rebuilds are gated against. *)
let churn_workload n =
  let rng = Random.State.make [| n; 7171 |] in
  Drift.churn_heavy rng ~n_ops:n ~k:4 ~z:0

let replay_ball w =
  let t = Dyn.Ball.create ~dim:w.Drift.dim () in
  Array.iter
    (function
      | Drift.Insert p -> ignore (Dyn.Ball.insert t p)
      | Drift.Delete id -> Dyn.Ball.delete t id)
    w.Drift.ops;
  t

let replay_range w =
  let t = Dyn.Range.create ~dim:w.Drift.dim () in
  Array.iter
    (function
      | Drift.Insert p -> ignore (Dyn.Range.insert t p)
      | Drift.Delete id -> Dyn.Range.delete t id)
    w.Drift.ops;
  t

(* Shared by [fig_dynamic] and [smoke_dynamic]: replays a drifting
   insert/delete workload through both dynamic trees, hard-fails if a
   final query differs from a static rebuild over the survivors, gates
   amortized insert cost against rebuild-per-insert at n >= 4096, then
   replays a delete-heavy churn workload and hard-fails any level whose
   stored/live ratio reaches 1 + alpha (and requires the partial-rebuild
   policy to actually fire). Writes [json_path] and returns the
   deterministic rebuild-work counts. *)
let run_dynamic_checks ~label ~sizes ~reps ~json_path () =
  let rows = ref [] and json_rows = ref [] and counts = ref [] in
  let record structure n variant secs per_op =
    rows :=
      [ structure; string_of_int n; variant; Util.fmt_time secs;
        Util.fmt_time per_op ]
      :: !rows;
    json_rows :=
      Printf.sprintf
        "    {\"structure\": \"%s\", \"n_ops\": %d, \"variant\": \"%s\", \
         \"seconds\": %.6f, \"per_op\": %.9f}"
        structure n variant secs per_op
      :: !json_rows
  in
  List.iter
    (fun n ->
      if n land (n - 1) <> 0 then
        invalid_arg "run_dynamic_checks: sizes must be powers of two";
      let w = dynamic_workload n in
      (* --- correctness: final answers = static rebuild of survivors --- *)
      let ball = replay_ball w in
      let range = replay_range w in
      let live = Dyn.Ball.live_points ball in
      let ids = Array.of_list (List.map fst live) in
      let pts = Array.of_list (List.map snd live) in
      let center = Array.make w.Drift.dim 0.0 in
      let radius = 1000.0 in
      let dyn_hits = Dyn.Ball.ball_report ball ~center ~radius in
      let static_hits =
        if pts = [||] then []
        else
          let st = Bbd.build pts in
          Bbd.ball_query st ~center ~radius ~eps:0.0
          |> List.concat_map (Bbd.points_of_node st)
          |> List.map (fun l -> ids.(l))
          |> List.sort compare
      in
      if dyn_hits <> static_hits then
        failwith
          (Printf.sprintf
             "dynamic check: ball answers diverged from static rebuild at \
              n=%d"
             n);
      let whole = Rect.unbounded w.Drift.dim in
      if Dyn.Range.report range whole <> Array.to_list ids then
        failwith
          (Printf.sprintf
             "dynamic check: range answers diverged from the live set at \
              n=%d"
             n);
      (* --- deterministic rebuild-work counts --- *)
      let s = Dyn.Ball.stats ball in
      counts :=
        (Printf.sprintf "dynamic.ball.points_rebuilt.n%d" n,
         s.Dyn.points_rebuilt)
        :: (Printf.sprintf "dynamic.ball.level_rebuilds.n%d" n,
            s.Dyn.level_rebuilds)
        :: (Printf.sprintf "dynamic.ball.partial_rebuilds.n%d" n,
            s.Dyn.partial_rebuilds)
        :: (Printf.sprintf "dynamic.live.n%d" n, Dyn.Ball.live_count ball)
        :: (Printf.sprintf "dynamic.ball.query_hits.n%d" n,
            List.length dyn_hits)
        :: (Printf.sprintf "dynamic.range.points_rebuilt.n%d" n,
            (Dyn.Range.stats range).Dyn.points_rebuilt)
        :: !counts;
      (* --- amortized update cost of the full insert/delete replay --- *)
      let _, tb =
        with_obs_disabled (fun () ->
            timed_best reps (fun () -> ignore (replay_ball w)))
      in
      record "ball" n "dynamic replay" tb (tb /. float_of_int n);
      let _, tr =
        with_obs_disabled (fun () ->
            timed_best reps (fun () -> ignore (replay_range w)))
      in
      record "range" n "dynamic replay" tr (tr /. float_of_int n);
      (* --- insert-only amortized cost vs rebuild-per-insert ---
         The static baseline rebuilds the BBD tree after each insert;
         its cost is sampled every [stride] inserts and scaled (build
         time is smooth in the prefix length, so the stride introduces
         only sampling noise, and it keeps the smoke run fast). *)
      let ins =
        Array.of_seq
          (Seq.filter_map
             (function Drift.Insert p -> Some p | Drift.Delete _ -> None)
             (Array.to_seq w.Drift.ops))
      in
      let n_ins = Array.length ins in
      let _, t_dyn =
        with_obs_disabled (fun () ->
            timed_best reps (fun () ->
                let t = Dyn.Ball.create ~dim:w.Drift.dim () in
                Array.iter (fun p -> ignore (Dyn.Ball.insert t p)) ins))
      in
      let stride = 64 in
      let _, t_sampled =
        with_obs_disabled (fun () ->
            timed_best reps (fun () ->
                for i = 1 to n_ins / stride do
                  ignore (Bbd.build (Array.sub ins 0 (i * stride)))
                done))
      in
      let t_rebuild = t_sampled *. float_of_int stride in
      record "ball" n "insert-only dynamic" t_dyn
        (t_dyn /. float_of_int (max 1 n_ins));
      record "ball" n
        (Printf.sprintf "rebuild-per-insert (stride %d)" stride)
        t_rebuild
        (t_rebuild /. float_of_int (max 1 n_ins));
      if n >= 4096 && t_dyn > t_rebuild then
        failwith
          (Printf.sprintf
             "dynamic check: amortized insert SLOWER than rebuild-per-insert \
              at n=%d (%.6fs vs %.6fs); the logarithmic method must never \
              lose at this size"
             n t_dyn t_rebuild);
      (* --- delete-heavy churn: per-level stored/live stays bounded ---
         The churn adversary sustains 3:1 deletes over inserts; the
         weight-balanced partial rebuilds must keep every level at
         [stored < (1 + alpha) * live] anyway, and the final answers
         must still equal the live set. *)
      let cw = churn_workload n in
      let cball = replay_ball cw in
      let crange = replay_range cw in
      let clive = Dyn.Ball.live_ids cball in
      if Dyn.Range.report crange (Rect.unbounded cw.Drift.dim) <> clive then
        failwith
          (Printf.sprintf
             "dynamic check: churn range answers diverged from the live set \
              at n=%d"
             n);
      let gate_levels structure t_alpha stats =
        List.iteri
          (fun i (stored, lvl_live) ->
            if
              not
                (float_of_int (stored - lvl_live)
                < t_alpha *. float_of_int lvl_live)
            then
              failwith
                (Printf.sprintf
                   "dynamic check: churn %s level %d holds %d stored for %d \
                    live at n=%d — stored/live ratio exceeds 1 + alpha \
                    (%.2f); the partial-rebuild policy is broken"
                   structure i stored lvl_live n (1.0 +. t_alpha)))
          stats
      in
      gate_levels "ball" (Dyn.Ball.alpha cball) (Dyn.Ball.level_stats cball);
      gate_levels "range" (Dyn.Range.alpha crange)
        (Dyn.Range.level_stats crange);
      let cs = Dyn.Ball.stats cball in
      if cs.Dyn.partial_rebuilds = 0 then
        failwith
          (Printf.sprintf
             "dynamic check: churn workload fired no partial rebuild at \
              n=%d — the adversary is not exercising the policy"
             n);
      counts :=
        (Printf.sprintf "dynamic.churn.ball.partial_rebuilds.n%d" n,
         cs.Dyn.partial_rebuilds)
        :: (Printf.sprintf "dynamic.churn.ball.points_rebuilt.n%d" n,
            cs.Dyn.points_rebuilt)
        :: (Printf.sprintf "dynamic.churn.stored.n%d" n,
            Dyn.Ball.stored_count cball)
        :: (Printf.sprintf "dynamic.churn.live.n%d" n,
            Dyn.Ball.live_count cball)
        :: !counts;
      let _, tc =
        with_obs_disabled (fun () ->
            timed_best reps (fun () -> ignore (replay_ball cw)))
      in
      record "ball" n "churn replay (3:1 deletes)" tc
        (tc /. float_of_int n))
    sizes;
  let counts =
    List.sort (fun (a, _) (b, _) -> String.compare a b) !counts
  in
  Util.print_table
    ~title:
      (Printf.sprintf
         "DYNAMIC (%s)  logarithmic-method trees under drift churn \
          (static-rebuild answers enforced; per-op = wall-clock / ops)"
         label)
    [ "structure"; "n_ops"; "variant"; "wall-clock"; "per-op" ]
    (List.rev !rows);
  Util.write_file json_path
    (Printf.sprintf
       "{\n  \"bench\": \"dynamic\",\n  \"variant\": \"%s\",\n  \"nproc\": \
        %d,\n  \"domains\": %d,\n  \"rows\": [\n%s\n  ],\n  \"counters\": \
        %s\n}\n"
       label (nproc ())
       (Pool.default_size ())
       (String.concat ",\n" (List.rev !json_rows))
       (Obs.counters_json counts));
  counts

let fig_dynamic () =
  ignore
    (run_dynamic_checks ~label:"full" ~sizes:[ 1024; 4096; 16384 ] ~reps:3
       ~json_path:"BENCH_dynamic.json" ())

let dynamic_baseline_path = "BENCH_dynamic_baseline.json"

(* Dynamic gate for `make bench-smoke`: beyond the static-rebuild
   identity and the amortized-insert gate inside [run_dynamic_checks],
   the logarithmic-method rebuild work (points fed through static
   builds, level merges, half-dead rebuilds) on the pinned drift
   workload must match the committed baseline exactly. *)
let smoke_dynamic () =
  let counts =
    run_dynamic_checks ~label:"smoke" ~sizes:[ 4096 ] ~reps:3
      ~json_path:"BENCH_dynamic_smoke.json" ()
  in
  if not (Sys.file_exists dynamic_baseline_path) then begin
    Util.write_file dynamic_baseline_path
      (Printf.sprintf
         "{\n  \"bench\": \"dynamic_baseline\",\n  \"workload\": \
          \"smoke\",\n  \"counters\": %s\n}\n"
         (Obs.counters_json counts));
    Printf.printf
      "dynamic smoke: no baseline found; recorded %s (commit it to arm the \
       gate).\n"
      dynamic_baseline_path
  end
  else begin
    let baseline = read_whole_file dynamic_baseline_path in
    List.iter
      (fun (name, v) ->
        match find_counter baseline name with
        | None ->
            failwith
              (Printf.sprintf "dynamic smoke: %s missing from %s" name
                 dynamic_baseline_path)
        | Some b ->
            if v <> b then
              failwith
                (Printf.sprintf
                   "dynamic smoke: %s drifted (baseline %d, now %d; rebuild \
                    work is deterministic, so the gate is exact)"
                   name b v))
      counts;
    Printf.printf
      "dynamic smoke: answers match static rebuilds; amortized insert beats \
       rebuild-per-insert; churn keeps every level below (1 + alpha) * \
       live; all rebuild-work counts match baseline exactly.\n"
  end

(* ------------------------------------------------------------------ *)
(* SERVE -- the csokitd session loop benched end-to-end in process     *)
(* ------------------------------------------------------------------ *)

module Sproto = Cso_serve.Protocol
module Sserver = Cso_serve.Server
module Sregistry = Cso_serve.Registry

(* Closed-loop replay client over a socketpair: one outstanding request
   at a time, raw reply payloads kept (newest first) so the transcript
   can be digested for the deterministic smoke gate. *)
type sclient = {
  sc_fd : Unix.file_descr;
  sc_rd : Sproto.reader;
  mutable sc_script : Sproto.request list;
  mutable sc_t0 : float;
  mutable sc_outstanding : bool;
  mutable sc_frames : string list;
  mutable sc_lat_us : float list;
}

let sc_write c s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring c.sc_fd s !off (n - !off)
  done

let sc_try_read c =
  match Unix.select [ c.sc_fd ] [] [] 0.0 with
  | [], _, _ -> ()
  | _ ->
      let buf = Bytes.create 65536 in
      let n = Unix.read c.sc_fd buf 0 (Bytes.length buf) in
      if n > 0 then
        List.iter
          (function
            | `Frame payload ->
                c.sc_lat_us <-
                  ((Unix.gettimeofday () -. c.sc_t0) *. 1e6) :: c.sc_lat_us;
                c.sc_outstanding <- false;
                c.sc_frames <- payload :: c.sc_frames
            | `Oversized _ -> failwith "serve bench: oversized reply")
          (Sproto.feed c.sc_rd buf n)

let serve_points n =
  let st = Random.State.make [| n; 271828 |] in
  Array.init n (fun _ ->
      [| Random.State.float st 100.0; Random.State.float st 100.0 |])

(* Read-only request mix per client (everything after setup is a query,
   so the resident instance never mutates and the reply transcript is a
   pure function of the scripts). *)
let serve_script ~points ~n_requests ci =
  let n = Array.length points in
  List.init n_requests (fun j ->
      let p = points.(((ci * 37) + (j * 13)) mod n) in
      match j mod 10 with
      | 0 -> Sproto.Solve "bench"
      | 1 | 2 -> Sproto.Balls_all { name = "bench"; radius = 8.0; eps = 0.1 }
      | 3 -> Sproto.Assign "bench"
      | _ ->
          Sproto.Query_ball
            { name = "bench"; center = p; radius = 10.0; eps = 0.1 })

let percentile = Util.percentile_sorted

(* Shared by [fig_serve] and [smoke_serve]: drives [n_clients]
   closed-loop clients through an in-process server (socketpair
   transport, binary codec, pooled batched execution), hard-fails on any
   error / overload reply, writes [json_path], and returns the
   deterministic transcript fingerprint (request and response counts
   plus an MD5 of every reply payload in client order) for the smoke
   gate. Wall-clock derived numbers (qps, latency percentiles) land in
   the JSON but are never gated. *)
let run_serve_bench ~label ~n_points ~n_clients ~n_requests ~json_path () =
  let points = serve_points n_points in
  (* The rects are the candidate outlier sets and must cover every
     point; a 4x4 tiling keeps any single discarded set from emptying
     the population, so the warm solve always has centers for
     [Assign]. *)
  let rects =
    Array.init 16 (fun i ->
        let x = float_of_int (i mod 4) *. 25.0
        and y = float_of_int (i / 4) *. 25.0 in
        Rect.make ~lo:[| x; y |] ~hi:[| x +. 25.0; y +. 25.0 |])
  in
  let registry = Sregistry.create () in
  let srv =
    Sserver.create
      ~config:
        { Sserver.mode = Sproto.Binary;
          max_inflight = 4 * (n_clients + 1);
          batch = 32 }
      registry
  in
  Sserver.set_clock srv Unix.gettimeofday;
  let mk_client () =
    let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Sserver.add_connection srv a;
    {
      sc_fd = b;
      sc_rd = Sproto.reader Sproto.Binary;
      sc_script = [];
      sc_t0 = 0.0;
      sc_outstanding = false;
      sc_frames = [];
      sc_lat_us = [];
    }
  in
  let drive clients =
    let live () =
      List.exists (fun c -> c.sc_script <> [] || c.sc_outstanding) clients
    in
    while live () do
      List.iter
        (fun c ->
          if (not c.sc_outstanding) && c.sc_script <> [] then begin
            let r = List.hd c.sc_script in
            c.sc_script <- List.tl c.sc_script;
            c.sc_t0 <- Unix.gettimeofday ();
            c.sc_outstanding <- true;
            sc_write c (Sproto.encode_request Sproto.Binary r)
          end)
        clients;
      ignore (Sserver.step ~timeout:0.0005 srv);
      List.iter sc_try_read clients
    done
  in
  let assert_clean who c =
    (* Oldest first: the first bad reply is the root cause (later ones
       are usually knock-on "no instance" errors). *)
    List.iteri
      (fun i p ->
        match Sproto.decode_response Sproto.Binary p with
        | Ok (Sproto.Error (_, m)) ->
            failwith
              (Printf.sprintf "serve bench: %s reply %d is an error: %s" who i
                 m)
        | Ok Sproto.Overloaded ->
            failwith
              (Printf.sprintf
                 "serve bench: %s reply %d overloaded under closed-loop load"
                 who i)
        | Ok _ -> ()
        | Error m -> failwith ("serve bench: undecodable reply: " ^ m))
      (List.rev c.sc_frames)
  in
  (* Setup session: resident instance, warm solve, static tree. *)
  let setup = mk_client () in
  setup.sc_script <-
    [
      Sproto.Load
        { name = "bench"; points; rects; k = 4; z = 1; eps = 0.5;
          rounds = Some 40; drift = 2.0 };
      Sproto.Solve "bench";
      Sproto.Prepare "bench";
    ];
  drive [ setup ];
  assert_clean "setup" setup;
  (* Measured phase: concurrent closed-loop query replay. *)
  let clients = List.init n_clients (fun _ -> mk_client ()) in
  List.iteri
    (fun i c -> c.sc_script <- serve_script ~points ~n_requests i)
    clients;
  let t_start = Unix.gettimeofday () in
  drive clients;
  let elapsed = Unix.gettimeofday () -. t_start in
  List.iter (assert_clean "client") clients;
  Sserver.close srv;
  List.iter (fun c -> try Unix.close c.sc_fd with Unix.Unix_error _ -> ())
    (setup :: clients);
  let total = n_clients * n_requests in
  let replies =
    List.fold_left (fun a c -> a + List.length c.sc_frames) 0 clients
  in
  let digest =
    Digest.to_hex
      (Digest.string
         (String.concat ""
            (List.concat_map (fun c -> List.rev c.sc_frames) clients)))
  in
  let lat =
    Array.of_list (List.concat_map (fun c -> c.sc_lat_us) clients)
  in
  Array.sort compare lat;
  let p50 = percentile lat 50.0 and p99 = percentile lat 99.0 in
  let qps = if elapsed > 0.0 then float_of_int replies /. elapsed else 0.0 in
  Util.print_table
    ~title:
      (Printf.sprintf
         "SERVE (%s)  in-process csokitd replay: %d resident points, \
          closed-loop clients over socketpairs, binary codec"
         label n_points)
    [ "clients"; "requests"; "replies"; "qps"; "p50"; "p99" ]
    [
      [
        string_of_int n_clients; string_of_int total; string_of_int replies;
        Printf.sprintf "%.0f" qps;
        Printf.sprintf "%.0f us" p50;
        Printf.sprintf "%.0f us" p99;
      ];
    ];
  let counts =
    [ ("serve.replayed_requests", total); ("serve.replayed_responses", replies) ]
  in
  Util.write_file json_path
    (Printf.sprintf
       "{\n  \"bench\": \"serve\",\n  \"variant\": \"%s\",\n  \"mode\": \
        \"binary\",\n  \"nproc\": %d,\n  \"domains\": %d,\n  \
        \"resident_points\": %d,\n  \"clients\": %d,\n  \"elapsed_s\": \
        %.6f,\n  \"qps\": %.1f,\n  \"p50_us\": %.1f,\n  \"p99_us\": %.1f,\n  \
        \"counters\": %s,\n  \"digest\": \"%s\"\n}\n"
       label (nproc ())
       (Pool.default_size ())
       n_points n_clients elapsed qps p50 p99
       (Obs.counters_json counts)
       digest);
  (counts, digest)

let fig_serve () =
  ignore
    (run_serve_bench ~label:"full" ~n_points:2048 ~n_clients:8
       ~n_requests:150 ~json_path:"BENCH_serve.json" ())

let serve_baseline_path = "BENCH_serve_baseline.json"

(* Minimal scan for ["name": "<string>"], mirroring [find_counter]. *)
let find_json_string json name =
  let needle = Printf.sprintf "\"%s\": \"" name in
  let nl = String.length needle and jl = String.length json in
  let rec go i =
    if i + nl > jl then None
    else if String.sub json i nl = needle then begin
      let j = ref (i + nl) in
      while !j < jl && json.[!j] <> '"' do
        incr j
      done;
      Some (String.sub json (i + nl) (!j - (i + nl)))
    end
    else go (i + 1)
  in
  go 0

(* Serve gate for `make serve-smoke` / `make bench-smoke`-style runs: on
   the pinned replay the request/response counts and the MD5 of the
   concatenated reply payloads (client order) must match the committed
   baseline byte-for-byte — the server path may never change an answer.
   Timings are reported but never gated. *)
let smoke_serve () =
  let counts, digest =
    run_serve_bench ~label:"smoke" ~n_points:512 ~n_clients:4 ~n_requests:60
      ~json_path:"BENCH_serve_smoke.json" ()
  in
  if not (Sys.file_exists serve_baseline_path) then begin
    Util.write_file serve_baseline_path
      (Printf.sprintf
         "{\n  \"bench\": \"serve_baseline\",\n  \"workload\": \"smoke\",\n  \
          \"counters\": %s,\n  \"digest\": \"%s\"\n}\n"
         (Obs.counters_json counts) digest);
    Printf.printf
      "serve smoke: no baseline found; recorded %s (commit it to arm the \
       gate).\n"
      serve_baseline_path
  end
  else begin
    let baseline = read_whole_file serve_baseline_path in
    List.iter
      (fun (name, v) ->
        match find_counter baseline name with
        | None ->
            failwith
              (Printf.sprintf "serve smoke: %s missing from %s" name
                 serve_baseline_path)
        | Some b ->
            if v <> b then
              failwith
                (Printf.sprintf
                   "serve smoke: %s drifted (baseline %d, now %d)" name b v))
      counts;
    (match find_json_string baseline "digest" with
    | None ->
        failwith
          (Printf.sprintf "serve smoke: digest missing from %s"
             serve_baseline_path)
    | Some b ->
        if b <> digest then
          failwith
            (Printf.sprintf
               "serve smoke: reply transcript digest drifted (baseline %s, \
                now %s; the server path changed an answer)"
               b digest));
    Printf.printf
      "serve smoke: %d replies match the committed transcript digest \
       exactly (%s).\n"
      (List.assoc "serve.replayed_responses" counts)
      digest
  end

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let all =
  [
    ("table1_hardness", table1_hardness);
    ("table1_cso_general", table1_cso_general);
    ("table1_cso_disjoint", table1_cso_disjoint);
    ("table1_gcso_general", table1_gcso_general);
    ("table1_gcso_disjoint", table1_gcso_disjoint);
    ("table1_rcto1", table1_rcto1);
    ("table1_rcto", table1_rcto);
    ("table1_rcro", table1_rcro);
    ("scaling_cso_lp", scaling_cso_lp);
    ("scaling_gcso_mwu", scaling_gcso_mwu);
    ("scaling_coreset_size", scaling_coreset_size);
    ("scaling_rcto1", scaling_rcto1);
    ("scaling_gcso_d3", scaling_gcso_d3);
    ("fig_mwu_convergence", fig_mwu_convergence);
    ("fig_epsilon_sweep", fig_epsilon_sweep);
    ("ablation_coreset", ablation_coreset);
    ("ablation_cso_coreset", ablation_cso_coreset);
    ("ablation_bbd_eps", ablation_bbd_eps);
    ("ablation_wspd_granularity", ablation_wspd_granularity);
    ("certified_ratios", certified_ratios);
    ("ablation_streaming", ablation_streaming);
    ("ablation_gonzalez_fast", ablation_gonzalez_fast);
    ("baseline_comparison", baseline_comparison);
    ("cyclic_rcro", cyclic_rcro);
    ("extension_kmedian", extension_kmedian);
    ("fig_parallel_scaling", fig_parallel_scaling);
    ("fig_counters", fig_counters);
    ("fig_budgets", fig_budgets);
    ("fig_kernels", fig_kernels);
    ("fig_dynamic", fig_dynamic);
    ("fig_serve", fig_serve);
    ("smoke_parallel", smoke_parallel);
    ("smoke_counters", smoke_counters);
    ("smoke_budgets", smoke_budgets);
    ("smoke_kernels", smoke_kernels);
    ("smoke_dynamic", smoke_dynamic);
    ("smoke_serve", smoke_serve);
  ]
