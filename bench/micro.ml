(* Bechamel micro-benchmarks: one [Test.make] per Table-1 row, measuring
   the end-to-end solve kernel on a small fixed instance. *)

open Bechamel
module Planted = Cso_workload.Planted
module Rgen = Cso_workload.Relational_gen
open Cso_core

let rng seed = Random.State.make [| seed; 13 |]

let tests () =
  (* Fixed instances built once; the staged closures only solve. *)
  let sc =
    Cso_setcover.Set_cover.make ~n_elements:6
      [ [ 0; 1; 2 ]; [ 3; 4; 5 ]; [ 0; 3 ]; [ 1; 4 ]; [ 2; 5 ] ]
  in
  let cso_gen = (Planted.cso ~f:2 (rng 1) ~n:30 ~m:6 ~k:2 ~z:2).Planted.instance in
  let cso_dis = (Planted.cso (rng 2) ~n:80 ~m:8 ~k:2 ~z:2).Planted.instance in
  let gcso_gen = (Planted.gcso_overlapping (rng 3) ~n:100 ~k:2 ~z:2).Planted.geo in
  let gcso_dis = (Planted.gcso_disjoint (rng 4) ~n:150 ~m:10 ~k:2 ~z:2).Planted.geo in
  let rcto1_w = Rgen.rcto1 (rng 5) ~n1:16 ~n2:8 ~k:2 ~z:1 in
  let rcto_w = Rgen.rcto (rng 6) ~n1:12 ~n2:6 ~k:1 ~z:1 in
  let rcro_w = Rgen.rcro (rng 7) ~n1:80 ~n2:20 ~k:2 ~z:3 in
  Test.make_grouped ~name:"table1"
    [
      Test.make ~name:"R1.hardness-reduction"
        (Staged.stage (fun () ->
             Hardness.solve_set_cover
               ~solver:(fun i -> (Cso_general.solve i).Cso_general.solution)
               sc ~k:2));
      Test.make ~name:"R2.cso-lp"
        (Staged.stage (fun () -> Cso_general.solve cso_gen));
      Test.make ~name:"R3.cso-coreset"
        (Staged.stage (fun () -> Cso_disjoint.solve cso_dis));
      Test.make ~name:"R4.gcso-mwu"
        (Staged.stage (fun () -> Gcso_general.solve ~eps:0.3 ~rounds:40 gcso_gen));
      Test.make ~name:"R5.gcso-coreset"
        (Staged.stage (fun () -> Gcso_disjoint.solve ~eps:0.3 ~rounds:40 gcso_dis));
      Test.make ~name:"R6.rcto1"
        (Staged.stage (fun () ->
             Rcto1.solve ~eps:0.3 ~rounds:40 rcto1_w.Rgen.instance
               rcto1_w.Rgen.tree ~k:2 ~z:1));
      Test.make ~name:"R7.rcto-fpt"
        (Staged.stage (fun () ->
             Rcto.solve ~rng:(rng 8) ~iters:20 rcto_w.Rgen.instance
               rcto_w.Rgen.tree ~k:1 ~z:1));
      Test.make ~name:"R8.rcro-sampling"
        (Staged.stage (fun () ->
             Rcro.solve ~rng:(rng 9) rcro_w.Rgen.instance rcro_w.Rgen.tree ~k:2
               ~z:3));
    ]

let run () =
  let cfg =
    Benchmark.cfg ~limit:20 ~quota:(Time.second 0.5) ~kde:None ~stabilize:false ()
  in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] (tests ()) in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some (t :: _) -> Util.fmt_time (t /. 1e9)
        | _ -> "n/a"
      in
      rows := [ name; est ] :: !rows)
    results;
  Util.print_table ~title:"Bechamel micro-benchmarks (one per Table-1 row)"
    [ "kernel"; "time per solve" ]
    (List.sort compare !rows)
