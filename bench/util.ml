(* Shared helpers for the benchmark harness: wall-clock timing and plain
   fixed-width table rendering. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let fmt_time s =
  if s < 1e-3 then Printf.sprintf "%.0fus" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.1fms" (s *. 1e3)
  else Printf.sprintf "%.2fs" s

(* Nearest-rank percentile over an already-sorted sample array — the
   same rank convention as [Obs.Hist.quantile] ([rank = q * (n-1)]), so
   exact-sample and histogram-estimated quantiles are comparable. *)
let percentile_sorted sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(int_of_float (p /. 100.0 *. float_of_int (n - 1)))

let print_table ~title headers rows =
  let headers = Array.of_list headers in
  let rows = List.map Array.of_list rows in
  let ncols = Array.length headers in
  let width = Array.map String.length headers in
  List.iter
    (fun row ->
      Array.iteri
        (fun i cell -> if i < ncols then width.(i) <- max width.(i) (String.length cell))
        row)
    rows;
  let pad i s = s ^ String.make (width.(i) - String.length s) ' ' in
  let line c =
    String.concat "-+-" (Array.to_list (Array.mapi (fun i _ -> String.make width.(i) c) headers))
  in
  Printf.printf "\n== %s ==\n" title;
  Printf.printf "%s\n" (String.concat " | " (Array.to_list (Array.mapi pad headers)));
  Printf.printf "%s\n" (line '-');
  List.iter
    (fun row ->
      Printf.printf "%s\n"
        (String.concat " | " (Array.to_list (Array.mapi pad row))))
    rows;
  flush stdout

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Printf.printf "[wrote %s]\n" path

(* Accumulated Table-1 reproduction: one row per paper row, printed at
   the end of the run. *)
type t1_row = {
  problem : string;
  guarantee : string; (* the paper's (mu1, mu2, mu3) *)
  measured : string; (* our measured (mu1, mu2, mu3) *)
  time : string;
  verdict : string;
}

let t1_rows : t1_row list ref = ref []

let record_t1 ~problem ~guarantee ~measured ~time ~ok =
  t1_rows :=
    {
      problem;
      guarantee;
      measured;
      time;
      verdict = (if ok then "within bounds" else "VIOLATED");
    }
    :: !t1_rows

let print_t1_summary () =
  print_table ~title:"TABLE 1 (paper) -- empirical reproduction"
    [ "Problem"; "Guarantee (mu1,mu2,mu3)"; "Measured"; "Time"; "Verdict" ]
    (List.rev_map
       (fun r -> [ r.problem; r.guarantee; r.measured; r.time; r.verdict ])
       !t1_rows)
