(* Benchmark harness driver.

   Usage:
     dune exec bench/main.exe               # run everything
     dune exec bench/main.exe -- table1     # only the Table-1 rows
     dune exec bench/main.exe -- scaling fig ablation micro
     dune exec bench/main.exe -- table1_rcro fig_epsilon_sweep  # by name
*)

let matches filters name =
  filters = []
  || List.exists
       (fun f -> f = name || String.length f < String.length name
                 && String.sub name 0 (String.length f) = f)
       filters

let () =
  (* lib/obs defaults to the dependency-free Sys.time clock; the bench
     binary links Unix anyway, so give spans real wall-clock. *)
  Cso_obs.Obs.set_clock Unix.gettimeofday;
  let filters = List.tl (Array.to_list Sys.argv) in
  let with_micro = matches filters "micro" in
  Printf.printf
    "Clustering with Set Outliers (PODS 2025) -- benchmark harness\n";
  Printf.printf
    "Each experiment regenerates one artifact of the paper; see DESIGN.md \
     section 3 and EXPERIMENTS.md.\n";
  List.iter
    (fun (name, fn) ->
      if matches filters name then begin
        let (), t = Util.time fn in
        Printf.printf "[%s finished in %s]\n" name (Util.fmt_time t)
      end)
    Experiments.all;
  if with_micro || filters = [] then Micro.run ();
  if Util.(!t1_rows) <> [] then Util.print_t1_summary ()
