(* Fraud-window detection: the geometric scenario from the paper's
   introduction.

   Transactions are embedded as points (price, hour). An upstream
   classifier proposes a suspicious hyper-rectangle — a price/time window
   that may hold wash-trading or card-testing bursts. We cluster the
   transactions with k centers while discarding up to z whole windows,
   using the MWU-based GCSO algorithm of Section 3.2. The base market
   segmentation (coarse price x time cells) also consists of rectangles,
   so the candidate family mixes both and f = 2.

   The fraud window deliberately straddles all four base cells: no small
   family of base cells can absorb the fraud, so the only way to reach a
   tight clustering is to discard the window itself — set outliers at
   work. Run with:

     dune exec examples/fraud_detection.exe
*)

module Point = Cso_metric.Point
module Rect = Cso_geom.Rect
module Geo_instance = Cso_core.Geo_instance
module Gcso_general = Cso_core.Gcso_general
module Instance = Cso_core.Instance

let rng = Random.State.make [| 2025 |]

let () =
  let k = 3 and z = 1 in

  (* Three legitimate buying patterns: lunch (~12 EUR, early morning),
     groceries (~20 EUR, evening), electronics (~80 EUR, afternoon). *)
  let patterns = [| (12.0, 5.0); (20.0, 19.0); (80.0, 16.0) |] in
  let legit =
    Array.init 90 (fun i ->
        let price, hour = patterns.(i mod 3) in
        [|
          price +. Random.State.float rng 2.0;
          hour +. Random.State.float rng 1.0;
        |])
  in

  (* The flagged window: a burst of uniform transactions around
     (price 50, noon), straddling every base cell. *)
  let window = Rect.of_intervals [ (46.0, 54.0); (11.0, 13.0) ] in
  let fraud =
    Array.init 14 (fun _ ->
        [|
          46.0 +. Random.State.float rng 8.0;
          11.0 +. Random.State.float rng 2.0;
        |])
  in

  let points = Array.append legit fraud in
  (* Base segmentation: coarse price x time cells covering the domain. *)
  let base =
    List.concat_map
      (fun p ->
        List.map
          (fun h -> Rect.of_intervals [ (p, p +. 50.0); (h, h +. 12.0) ])
          [ 0.0; 12.0 ])
      [ 0.0; 50.0 ]
  in
  let rects = Array.append (Array.of_list base) [| window |] in
  let g = Geo_instance.make ~points ~rects ~k ~z in

  Format.printf
    "fraud-detection: %d transactions, %d rectangles (%d base cells + 1 \
     suspicious window), f = %d, k = %d, z = %d@."
    (Array.length points) (Array.length rects) (List.length base)
    (Geo_instance.frequency g) k z;

  let report = Gcso_general.solve ~eps:0.3 ~rounds:150 g in
  let sol = report.Gcso_general.solution in
  let n_base = List.length base in
  let discarded =
    List.map
      (fun j ->
        if j >= n_base then "suspicious-window" else Printf.sprintf "cell#%d" j)
      sol.Instance.outliers
  in
  Format.printf "discarded rectangles: %s@." (String.concat ", " discarded);
  Format.printf "centers (price, hour):@.";
  List.iter
    (fun i -> Format.printf "  %a@." Point.pp points.(i))
    sol.Instance.centers;
  Format.printf "clustering cost of the surviving transactions: %.2f@."
    (Geo_instance.cost g sol);

  (* Accounting: which transactions were excluded? *)
  let mask =
    Instance.covered_mask (Geo_instance.to_cso g) sol.Instance.outliers
  in
  let count_masked lo hi =
    let c = ref 0 in
    for i = lo to hi - 1 do
      if mask.(i) then incr c
    done;
    !c
  in
  Format.printf "fraudulent transactions excluded: %d / %d@."
    (count_masked 90 104) 14;
  Format.printf "legitimate transactions sacrificed: %d / %d@."
    (count_masked 0 90) 90
