(* Sensor-network fault isolation: the disjoint (f = 1) scenario.

   A fleet of sensors streams readings; readings of healthy sensors
   concentrate around a few operating regimes, while faulty sensors emit
   junk. Discarding up to z whole sensors (not individual readings!) and
   clustering the rest is exactly disjoint GCSO: each sensor owns a
   degenerate rectangle on its id coordinate. Solved with the coreset +
   MWU algorithm of Section 3.3. Run with:

     dune exec examples/sensor_network.exe
*)

module Geo_instance = Cso_core.Geo_instance
module Gcso_disjoint = Cso_core.Gcso_disjoint
module Instance = Cso_core.Instance
module Planted = Cso_workload.Planted

let () =
  let rng = Random.State.make [| 42 |] in
  let n = 160 and m = 16 and k = 3 and z = 3 in
  let w = Planted.gcso_disjoint rng ~n ~m ~k ~z in
  let g = w.Planted.geo in

  Format.printf
    "sensor-network: %d readings from %d sensors (%d faulty), k = %d@." n m z k;

  let report = Gcso_disjoint.solve ~eps:0.3 ~rounds:150 g in
  let sol = report.Gcso_disjoint.solution in

  Format.printf "sensors discarded: %s (planted faulty: %s)@."
    (String.concat ", " (List.map string_of_int sol.Instance.outliers))
    (String.concat ", " (List.map string_of_int w.Planted.g_bad_sets));
  Format.printf "centers chosen: %d (budget %d, tri-criteria allows %d)@."
    (List.length sol.Instance.centers)
    k
    (int_of_float (ceil (2.3 *. float_of_int k)));
  Format.printf "coreset handed to the MWU solver: %d of %d points@."
    report.Gcso_disjoint.coreset_points n;

  let cost = Geo_instance.cost g sol in
  Format.printf "clustering cost: %.3f (planted optimum <= %.3f)@." cost
    w.Planted.g_opt_upper;
  Format.printf "measured approximation vs planted bound: %.2fx@."
    (cost /. w.Planted.g_opt_upper);

  (* How many faulty sensors did we catch? *)
  let caught =
    List.length
      (List.filter
         (fun b -> List.mem b sol.Instance.outliers)
         w.Planted.g_bad_sets)
  in
  Format.printf "faulty sensors caught: %d / %d@." caught z
