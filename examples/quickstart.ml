(* Quickstart: k-center clustering with set outliers in five minutes.

   We build a tiny general-metric CSO instance by hand — three data
   sources, one of them corrupted — and solve it with the LP-based
   (2, 2f, 2)-approximation of the paper's Section 2.2, then compare
   against the exact optimum. Run with:

     dune exec examples/quickstart.exe
*)

module Space = Cso_metric.Space
module Instance = Cso_core.Instance
module Cso_general = Cso_core.Cso_general
module Exact = Cso_core.Exact

let () =
  (* Readings from three sources, embedded in R^1 for readability.
     Sources A and B measure the same two regimes (around 0 and around
     50); source C is corrupted and reports garbage. *)
  let points =
    [|
      (* source A *)
      [| 0.0 |]; [| 1.0 |]; [| 50.0 |]; [| 51.0 |];
      (* source B *)
      [| 0.5 |]; [| 49.5 |];
      (* source C: corrupted *)
      [| 200.0 |]; [| 321.0 |]; [| 444.0 |];
    |]
  in
  let sets = [ [ 0; 1; 2; 3 ]; [ 4; 5 ]; [ 6; 7; 8 ] ] in
  let instance =
    Instance.make (Space.of_points points) ~sets ~k:2 ~z:1
  in

  Format.printf "CSO instance: %d points, %d candidate outlier sets, k=2, z=1@."
    (Instance.n_elements instance)
    (Instance.n_sets instance);

  (* Solve with the LP-based algorithm (Theorem 2.4). *)
  let report = Cso_general.solve instance in
  let sol = report.Cso_general.solution in
  Format.printf "LP algorithm: centers = %s, outlier sets = %s@."
    (String.concat ", " (List.map string_of_int sol.Instance.centers))
    (String.concat ", " (List.map string_of_int sol.Instance.outliers));
  Format.printf "  clustering cost = %.2f (radius guess %.2f, %d LPs solved)@."
    (Instance.cost instance sol)
    report.Cso_general.radius report.Cso_general.lp_solves;

  (* Ground truth via exhaustive search (fine at this size). *)
  (match Exact.solve instance with
  | Some (opt_sol, opt_cost) ->
      Format.printf "Exact optimum: cost = %.2f (outliers = %s)@." opt_cost
        (String.concat ", " (List.map string_of_int opt_sol.Instance.outliers));
      Format.printf "  approximation ratio on cost: %.2fx (theory allows 2x)@."
        (if opt_cost > 0.0 then Instance.cost instance sol /. opt_cost else 1.0)
  | None -> Format.printf "instance too large for the exact solver@.");

  (* The whole point of set outliers: removing source C (one set) rescues
     the clustering; removing any one point would not. *)
  let without_outliers =
    Instance.cost instance { Instance.centers = sol.Instance.centers; outliers = [] }
  in
  Format.printf
    "For contrast, keeping every source would cost %.2f — structured noise@."
    without_outliers
