(* Relational clustering with outliers: the crowdsourcing scenario of the
   paper's introduction.

   Observations from an untrusted crowd are stored in R1(A, B); trusted
   reference data lives in R2(B, C). The analyst clusters the join
   R1 |><| R2 — but a handful of erroneous crowd tuples would wreck a
   plain k-center clustering. We run all three relational algorithms:

   - RCTO1 (Sec. 4.1.1): remove up to z tuples of the dirty relation R1;
   - RCTO  (Sec. 4.1.2): remove up to z tuples from anywhere;
   - RCRO  (App. E):     remove up to z join *results* instead.

   Run with: dune exec examples/crowdsourcing.exe
*)

module Rel = Cso_relational
module Rgen = Cso_workload.Relational_gen
module Rcto1 = Cso_core.Rcto1
module Rcto = Cso_core.Rcto
module Rcro = Cso_core.Rcro
module Point = Cso_metric.Point

let cover_cost centers results =
  Array.fold_left
    (fun acc q ->
      max acc
        (List.fold_left (fun m c -> min m (Point.l2 c q)) infinity centers))
    0.0 results

let () =
  let k = 2 and z = 2 in
  let rng = Random.State.make [| 1234 |] in
  let w = Rgen.rcto1 rng ~n1:24 ~n2:10 ~k ~z in
  let inst = w.Rgen.instance and tree = w.Rgen.tree in
  let full = Rel.Yannakakis.enumerate inst tree in
  Format.printf
    "crowdsourcing: |R1| = %d (untrusted), |R2| = %d (trusted), |Q(I)| = %d@."
    (Rel.Instance.n_tuples inst 0)
    (Rel.Instance.n_tuples inst 1)
    (Array.length full);
  Format.printf "clustering the raw join would cost %.1f@."
    (let c, _ = Cso_kcenter.Gonzalez.run_points full ~k in
     cover_cost (List.map (fun i -> full.(i)) c) full);

  (* RCTO1: outliers restricted to the untrusted relation. *)
  let r1 = Rcto1.solve ~eps:0.3 ~rounds:120 inst tree ~k ~z in
  let reduced =
    Rel.Instance.remove inst
      (List.map (fun t -> (0, t)) r1.Rcto1.outlier_tuples)
  in
  let surviving = Rel.Yannakakis.enumerate reduced tree in
  Format.printf
    "RCTO1: removed %d crowd tuple(s); cost over surviving join = %.3f@."
    (List.length r1.Rcto1.outlier_tuples)
    (cover_cost r1.Rcto1.centers surviving);

  (* RCTO: outliers from any relation (FPT in k and z). *)
  (match
     Rcto.solve ~rng:(Random.State.make [| 5 |]) ~iters:200 inst tree ~k ~z
   with
  | None -> Format.printf "RCTO: no successful iteration (unlucky run)@."
  | Some r ->
      let reduced = Rel.Instance.remove inst r.Rcto.outlier_tuples in
      let surviving = Rel.Yannakakis.enumerate reduced tree in
      Format.printf
        "RCTO:  removed %d input tuple(s) across relations; cost = %.3f \
         (%d/%d iterations valid)@."
        (List.length r.Rcto.outlier_tuples)
        (cover_cost r.Rcto.centers surviving)
        r.Rcto.successes r.Rcto.iterations);

  (* RCRO: outliers are join results. *)
  let r3 = Rcro.solve ~rng:(Random.State.make [| 6 |]) inst tree ~k ~z in
  let out = Rcro.outliers_of r3 full in
  let kept =
    Array.of_list
      (List.filteri (fun i _ -> not (List.mem i out)) (Array.to_list full))
  in
  Format.printf
    "RCRO:  flagged %d join result(s) as outliers; cost over the rest = %.3f@."
    (List.length out)
    (cover_cost r3.Rcro.centers kept);

  Format.printf "planted optimum radius (after cleaning) <= %.3f@."
    w.Rgen.opt_upper
