(* Robust data summaries under every objective: k-center vs k-median vs
   k-means with set outliers, on the same data-integration instance.

   Readings aggregated from five upstream providers; one provider ships
   corrupted records. Discarding up to z whole providers and summarizing
   the rest with k representatives is CSO under the max objective
   (paper, Definition 1.1) and our k-median / k-means extension (the
   future-work direction of Section 5) under the sum objectives.

   Run with: dune exec examples/robust_summaries.exe
*)

module Space = Cso_metric.Space
module Instance = Cso_core.Instance
module Cso_general = Cso_core.Cso_general
module Kmedian = Cso_core.Kmedian

let rng = Random.State.make [| 77 |]

let () =
  let k = 2 and z = 1 in
  (* Providers 0..3 are honest and report two market segments; provider
     4 is corrupted. *)
  let segment s =
    let cx, cy = if s = 0 then (10.0, 10.0) else (60.0, 40.0) in
    [| cx +. Random.State.float rng 3.0; cy +. Random.State.float rng 3.0 |]
  in
  let honest p =
    Array.to_list (Array.init 12 (fun i -> (p, segment (i mod 2))))
  in
  let corrupt =
    Array.to_list
      (Array.init 8 (fun _ ->
           ( 4,
             [|
               Random.State.float rng 500.0; Random.State.float rng 500.0;
             |] )))
  in
  let tagged = List.concat_map honest [ 0; 1; 2; 3 ] @ corrupt in
  let points = Array.of_list (List.map snd tagged) in
  let providers = List.map fst tagged in
  let sets =
    List.init 5 (fun p ->
        List.concat
          (List.mapi (fun i q -> if q = p then [ i ] else []) providers))
  in
  let t = Instance.make (Space.of_points points) ~sets ~k ~z in
  Format.printf "robust-summaries: %d records from 5 providers, k=%d, z=%d@."
    (Array.length points) k z;

  let show name sol objective_value =
    Format.printf "%-10s discards provider(s) %s; centers %s; %s@." name
      (String.concat ", " (List.map string_of_int sol.Instance.outliers))
      (String.concat ", "
         (List.map
            (fun i -> Cso_metric.Point.to_string points.(i))
            sol.Instance.centers))
      objective_value
  in

  (* k-center with set outliers (the paper). *)
  let center_sol = (Cso_general.solve t).Cso_general.solution in
  show "k-center" center_sol
    (Printf.sprintf "max distance = %.2f" (Instance.cost t center_sol));

  (* k-median / k-means extensions. *)
  let median_sol = Kmedian.local_search t in
  show "k-median" median_sol
    (Printf.sprintf "sum of distances = %.2f" (Kmedian.cost t median_sol));
  (match Kmedian.lp_lower_bound t with
  | Some lb ->
      Format.printf
        "           (LP lower bound %.2f -> certified ratio %.3f)@." lb
        (Kmedian.cost t median_sol /. lb)
  | None -> ());

  let means_sol = Kmedian.local_search ~objective:Kmedian.Means t in
  show "k-means" means_sol
    (Printf.sprintf "sum of squares = %.2f"
       (Kmedian.cost ~objective:Kmedian.Means t means_sol))
